package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/repogen"
	"repro/serve"
	"repro/versioning"
)

// liveServer starts a real serve.Server over an in-memory repository
// preloaded with n committed versions, wrapped so tests can count the
// HTTP requests that actually reach each endpoint.
func liveServer(t *testing.T, n int) (*httptest.Server, *repogen.Repo, *requestCounts) {
	t.Helper()
	repo := versioning.NewRepository("client-test", versioning.RepositoryOptions{
		ReplanEvery:   4,
		EngineOptions: versioning.EngineOptions{SolverTimeout: 10 * time.Second, DisableILP: true},
	})
	// Registered before ts so it runs after ts.Close: the repository owns
	// a background maintenance worker that must drain or leakCheck trips.
	t.Cleanup(func() { repo.Close() })
	src := repogen.GenerateRepo("client-src", n, 11)
	for v := 0; v < src.Graph.N(); v++ {
		if _, err := repo.Commit(context.Background(), src.Parents[v], src.Contents[v]); err != nil {
			t.Fatal(err)
		}
	}
	counts := &requestCounts{}
	inner := serve.New(repo, serve.Options{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		counts.total.Add(1)
		if r.Method == http.MethodPost && r.URL.Path == "/checkout" {
			counts.batch.Add(1)
		}
		if r.Method == http.MethodGet && len(r.URL.Path) > len("/checkout/") && r.URL.Path[:len("/checkout/")] == "/checkout/" {
			counts.single.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, src, counts
}

type requestCounts struct {
	total, batch, single atomic.Int64
}

// leakCheck snapshots the goroutine count and fails the test if, after
// cleanup, more goroutines remain than before (with settling time for
// pool and timer teardown).
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		for {
			runtime.GC()
			if n := runtime.NumGoroutine(); n <= before {
				return
			} else if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, n, buf[:runtime.Stack(buf, true)])
			}
			time.Sleep(25 * time.Millisecond)
		}
	})
}

func TestClientRoundTrip(t *testing.T) {
	leakCheck(t)
	ts, src, _ := liveServer(t, 12)
	c := New(ts.URL, Options{})
	defer c.Close()
	ctx := context.Background()

	if v, err := c.Healthz(ctx); err != nil || v != 12 {
		t.Fatalf("Healthz = %d, %v", v, err)
	}
	cr, err := c.Commit(ctx, 0, []string{"a branch", "off the root"})
	if err != nil || cr.ID != 12 || cr.Versions != 13 {
		t.Fatalf("Commit = %+v, %v", cr, err)
	}
	lines, err := c.Checkout(ctx, 12)
	if err != nil || !reflect.DeepEqual(lines, []string{"a branch", "off the root"}) {
		t.Fatalf("Checkout(12) = %v, %v", lines, err)
	}
	for v := 0; v < 12; v++ {
		lines, err := c.Checkout(ctx, versioning.NodeID(v))
		if err != nil || !reflect.DeepEqual(lines, src.Contents[v]) {
			t.Fatalf("Checkout(%d) mismatch: %v", v, err)
		}
	}
	batch, err := c.CheckoutBatch(ctx, []versioning.NodeID{3, 7, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{3, 7, 3} {
		if batch[i].Err != nil || !reflect.DeepEqual(batch[i].Lines, src.Contents[want]) {
			t.Fatalf("batch[%d] = %+v", i, batch[i])
		}
	}
	if plan, err := c.Plan(ctx); err != nil || plan.Versions != 13 {
		t.Fatalf("Plan = %+v, %v", plan, err)
	}
	if stats, err := c.Stats(ctx); err != nil || stats.Versions != 13 {
		t.Fatalf("Stats = %+v, %v", stats, err)
	}
	if sz, err := c.Statsz(ctx); err != nil || sz.Endpoints["commit"].Requests != 1 {
		t.Fatalf("Statsz = %+v, %v", sz, err)
	}
	if _, err := c.Replan(ctx); err != nil {
		t.Fatalf("Replan: %v", err)
	}
	// Typed error for a missing version (direct, uncoalesced path).
	cd := New(ts.URL, Options{CoalesceWindow: -1})
	defer cd.Close()
	_, err = cd.Checkout(ctx, 999)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("Checkout(999) = %v, want APIError 404", err)
	}
}

func TestClientRetries5xxBurst(t *testing.T) {
	leakCheck(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"replica catching up"}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"id":5,"lines":["ok"]}`)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{CoalesceWindow: -1, RetryBaseDelay: time.Millisecond, MaxRetries: 3})
	defer c.Close()
	lines, err := c.Checkout(context.Background(), 5)
	if err != nil || !reflect.DeepEqual(lines, []string{"ok"}) {
		t.Fatalf("Checkout = %v, %v", lines, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + success)", calls.Load())
	}
}

func TestClientRetryBudgetBounded(t *testing.T) {
	leakCheck(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{CoalesceWindow: -1, RetryBaseDelay: time.Millisecond, MaxRetries: 2})
	defer c.Close()
	_, err := c.Checkout(context.Background(), 0)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want APIError 500", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d requests, want exactly 1 + MaxRetries(2)", calls.Load())
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	leakCheck(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, `{"id":0,"lines":["ok"]}`)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{CoalesceWindow: -1, RetryBaseDelay: time.Millisecond, RetryMaxDelay: 5 * time.Millisecond})
	defer c.Close()
	start := time.Now()
	if _, err := c.Checkout(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %v, want >= 1s from Retry-After", elapsed)
	}
}

func TestClientPerRequestTimeout(t *testing.T) {
	leakCheck(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select {
			case <-time.After(2 * time.Second):
			case <-r.Context().Done():
			}
			return
		}
		fmt.Fprint(w, `{"id":0,"lines":["fast"]}`)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{CoalesceWindow: -1, RequestTimeout: 60 * time.Millisecond, RetryBaseDelay: time.Millisecond})
	defer c.Close()
	lines, err := c.Checkout(context.Background(), 0)
	if err != nil || !reflect.DeepEqual(lines, []string{"fast"}) {
		t.Fatalf("Checkout = %v, %v (want retry past the hung attempt)", lines, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", calls.Load())
	}
}

func TestClientRetriesTornResponse(t *testing.T) {
	leakCheck(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Promise a long body, deliver half, drop the connection: the
			// client sees a success status with an undecodable body.
			w.Header().Set("Content-Length", "1000")
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, `{"id":0,"lin`)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		fmt.Fprint(w, `{"id":0,"lines":["whole"]}`)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{CoalesceWindow: -1, RetryBaseDelay: time.Millisecond})
	defer c.Close()
	lines, err := c.Checkout(context.Background(), 0)
	if err != nil || !reflect.DeepEqual(lines, []string{"whole"}) {
		t.Fatalf("Checkout = %v, %v (want retry past torn response)", lines, err)
	}
}

func TestClientCommitNotRetriedOnTransportError(t *testing.T) {
	leakCheck(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		panic(http.ErrAbortHandler) // connection dropped mid-request
	}))
	defer ts.Close()
	c := New(ts.URL, Options{RetryBaseDelay: time.Millisecond})
	defer c.Close()
	_, err := c.Commit(context.Background(), versioning.NoParent, []string{"x"})
	if err == nil {
		t.Fatal("commit over dropped connection reported success")
	}
	if calls.Load() != 1 {
		t.Fatalf("non-idempotent commit was resent %d times after a transport error", calls.Load()-1)
	}
}

func TestClientCommitRetriedOn5xx(t *testing.T) {
	leakCheck(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// An error *response* proves the commit did not apply.
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `{"id":0,"versions":1}`)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{RetryBaseDelay: time.Millisecond})
	defer c.Close()
	cr, err := c.Commit(context.Background(), versioning.NoParent, []string{"x"})
	if err != nil || cr.Versions != 1 {
		t.Fatalf("Commit = %+v, %v", cr, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d commit requests, want 2", calls.Load())
	}
}

func TestClientCoalescesConcurrentCheckouts(t *testing.T) {
	leakCheck(t)
	ts, src, counts := liveServer(t, 10)
	c := New(ts.URL, Options{CoalesceWindow: 40 * time.Millisecond})
	defer c.Close()
	const callers = 24
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := versioning.NodeID(i % 10)
			lines, err := c.Checkout(context.Background(), v)
			if err != nil {
				errs[i] = err
				return
			}
			if !reflect.DeepEqual(lines, src.Contents[v]) {
				errs[i] = fmt.Errorf("caller %d: wrong content for version %d", i, v)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := counts.batch.Load(); got == 0 || got >= callers {
		t.Fatalf("%d callers produced %d batch requests, want coalescing (0 < batches < callers)", callers, got)
	}
	if counts.single.Load() != 0 {
		t.Fatalf("coalescing client still sent %d single GETs", counts.single.Load())
	}
	if _, merged := c.co.counters(); merged == 0 {
		t.Fatal("no checkout calls were merged into an existing batch")
	}
}

func TestClientCoalesceMaxFlushesEarly(t *testing.T) {
	leakCheck(t)
	ts, _, counts := liveServer(t, 8)
	// Window far longer than the test: only the size trigger can flush.
	c := New(ts.URL, Options{CoalesceWindow: 10 * time.Second, CoalesceMax: 4})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Checkout(context.Background(), versioning.NodeID(i%8)); err != nil {
				t.Errorf("checkout %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if got := counts.batch.Load(); got != 2 {
		t.Fatalf("8 checkouts with CoalesceMax=4 made %d batch requests, want 2", got)
	}
}

func TestClientCoalescedErrorFanOut(t *testing.T) {
	leakCheck(t)
	ts, src, _ := liveServer(t, 6)
	c := New(ts.URL, Options{CoalesceWindow: 40 * time.Millisecond})
	defer c.Close()
	var wg sync.WaitGroup
	var goodErr, badErr error
	var goodLines []string
	wg.Add(2)
	go func() { defer wg.Done(); goodLines, goodErr = c.Checkout(context.Background(), 2) }()
	go func() { defer wg.Done(); _, badErr = c.Checkout(context.Background(), 500) }()
	wg.Wait()
	if goodErr != nil || !reflect.DeepEqual(goodLines, src.Contents[2]) {
		t.Fatalf("good member of mixed batch: %v, %v", goodLines, goodErr)
	}
	var apiErr *APIError
	if !errors.As(badErr, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("bad member of mixed batch: %v, want APIError 404", badErr)
	}
}

func TestClientCheckoutContextCancelAbandonsSlot(t *testing.T) {
	leakCheck(t)
	ts, src, _ := liveServer(t, 4)
	c := New(ts.URL, Options{CoalesceWindow: 60 * time.Millisecond})
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Checkout(ctx, 1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it join the pending batch
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled checkout returned %v", err)
	}
	// The batch still runs and serves other members correctly.
	lines, err := c.Checkout(context.Background(), 2)
	if err != nil || !reflect.DeepEqual(lines, src.Contents[2]) {
		t.Fatalf("checkout after canceled sibling: %v, %v", lines, err)
	}
}
