package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/serve"
	"repro/tenant"
	"repro/versioning"
)

// liveMultiServer starts a real multi-tenant serve stack over an
// in-memory tenant manager.
func liveMultiServer(t *testing.T, opt tenant.Options) *httptest.Server {
	t.Helper()
	if opt.Repo.ReplanEvery == 0 {
		opt.Repo.ReplanEvery = -1
	}
	if opt.Repo.EngineOptions == (versioning.EngineOptions{}) {
		opt.Repo.EngineOptions = versioning.EngineOptions{SolverTimeout: 10 * time.Second, DisableILP: true}
	}
	mgr := tenant.NewManager(opt)
	t.Cleanup(func() { mgr.Close() })
	ts := httptest.NewServer(serve.NewMulti(mgr, serve.Options{}))
	t.Cleanup(ts.Close)
	return ts
}

func TestClientTenantRoundTrip(t *testing.T) {
	leakCheck(t)
	ts := liveMultiServer(t, tenant.Options{})
	c := New(ts.URL, Options{})
	defer c.Close()
	ctx := context.Background()

	alice := c.Tenant("alice")
	bob := c.Tenant("bob")
	if c.Tenant("alice") != alice {
		t.Fatal("repeated Tenant(alice) returned a different view")
	}

	cr, err := alice.Commit(ctx, versioning.NoParent, []string{"alice v0"})
	if err != nil || cr.ID != 0 || cr.Versions != 1 {
		t.Fatalf("alice commit = %+v, %v", cr, err)
	}
	if _, err := bob.Commit(ctx, versioning.NoParent, []string{"bob v0", "extra"}); err != nil {
		t.Fatalf("bob commit: %v", err)
	}
	lines, err := alice.Checkout(ctx, 0)
	if err != nil || !reflect.DeepEqual(lines, []string{"alice v0"}) {
		t.Fatalf("alice checkout = %v, %v", lines, err)
	}
	lines, err = bob.Checkout(ctx, 0)
	if err != nil || len(lines) != 2 {
		t.Fatalf("bob checkout = %v, %v", lines, err)
	}
	batch, err := bob.CheckoutBatch(ctx, []versioning.NodeID{0, 0})
	if err != nil || len(batch) != 2 || batch[0].Err != nil {
		t.Fatalf("bob batch = %+v, %v", batch, err)
	}
	// Tenant-scoped metadata endpoints.
	if st, err := alice.Stats(ctx); err != nil || st.Versions != 1 {
		t.Fatalf("alice stats = %+v, %v", st, err)
	}
	if plan, err := alice.Plan(ctx); err != nil || plan.Versions != 1 {
		t.Fatalf("alice plan = %+v, %v", plan, err)
	}
	if _, err := alice.Replan(ctx); err != nil {
		t.Fatalf("alice replan: %v", err)
	}
	// A version committed to bob does not exist under alice.
	_, err = alice.Checkout(ctx, 1)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("alice cross-tenant checkout = %v, want 404", err)
	}
	// Fleet view through the same client.
	fleet, err := c.Fleetz(ctx, 3)
	if err != nil || fleet.Tenants != 2 {
		t.Fatalf("fleetz = %+v, %v", fleet, err)
	}
}

func TestClientTenantCoalescing(t *testing.T) {
	leakCheck(t)
	ts := liveMultiServer(t, tenant.Options{})
	c := New(ts.URL, Options{CoalesceWindow: 20 * time.Millisecond})
	defer c.Close()
	ctx := context.Background()

	alice := c.Tenant("alice")
	if _, err := alice.Commit(ctx, versioning.NoParent, []string{"v0"}); err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = alice.Checkout(ctx, 0)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	// All callers rode one (or very few) batch posts on the tenant's own
	// coalescer.
	batches, merged := alice.co.counters()
	if batches == 0 || merged == 0 {
		t.Fatalf("no coalescing happened: batches=%d merged=%d", batches, merged)
	}
	if batches+merged != callers {
		t.Fatalf("batches %d + merged %d != callers %d", batches, merged, callers)
	}
}

func TestClientTenantQuota429(t *testing.T) {
	leakCheck(t)
	ts := liveMultiServer(t, tenant.Options{
		Quota: tenant.Quota{CommitsPerSec: 0.001, CommitBurst: 1},
	})
	// Disable retries: a quota 429 is retryable by policy, but the test
	// asserts the typed error surface, not the retry loop.
	c := New(ts.URL, Options{MaxRetries: -1})
	defer c.Close()
	ctx := context.Background()
	alice := c.Tenant("alice")
	if _, err := alice.Commit(ctx, versioning.NoParent, []string{"v0"}); err != nil {
		t.Fatalf("first commit: %v", err)
	}
	_, err := alice.Commit(ctx, 0, []string{"v1"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("over-quota commit = %v, want APIError 429", err)
	}
}

// TestClientRetryHonorsContextCancelMidBackoff pins the satellite
// contract: a caller canceling its context while the client sleeps
// between retry attempts gets control back immediately (with the last
// server error), instead of being held hostage by a long Retry-After.
func TestClientRetryHonorsContextCancelMidBackoff(t *testing.T) {
	leakCheck(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30") // would back off for 30s
		http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{CoalesceWindow: -1})
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := c.Checkout(ctx, 0)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first attempt fail and the backoff start
	cancel()
	select {
	case err := <-done:
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("cancel mid-backoff took %s to return", elapsed)
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
			t.Fatalf("err = %v, want the last APIError 429", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Checkout still blocked 5s after context cancellation")
	}
}
