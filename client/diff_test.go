package client

import (
	"context"
	"net/http"
	"reflect"
	"testing"

	"repro/versioning"
)

// TestClientDiffAndScopedCheckout exercises the new read endpoints
// through the typed client: CommitMerge topology, Diff edit scripts,
// and path-scoped manifest checkouts.
func TestClientDiffAndScopedCheckout(t *testing.T) {
	leakCheck(t)
	ts, _, _ := liveServer(t, 0)
	c := New(ts.URL, Options{})
	defer c.Close()
	ctx := context.Background()

	manifest := func(tail string) []string {
		return versioning.EncodeManifest([]versioning.ManifestEntry{
			{Path: "docs/guide.md", Lines: []string{"guide"}},
			{Path: "src/main.go", Lines: []string{"package main", tail}},
		})
	}
	root, err := c.Commit(ctx, versioning.NoParent, manifest("// v0"))
	if err != nil {
		t.Fatal(err)
	}
	left, err := c.Commit(ctx, root.ID, manifest("// left"))
	if err != nil {
		t.Fatal(err)
	}
	right, err := c.Commit(ctx, root.ID, manifest("// right"))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := c.CommitMerge(ctx, []versioning.NodeID{left.ID, right.ID}, manifest("// merged"))
	if err != nil {
		t.Fatal(err)
	}
	if merged.Versions != 4 {
		t.Fatalf("merge commit left %d versions, want 4", merged.Versions)
	}

	d, err := c.Diff(ctx, left.ID, right.ID)
	if err != nil {
		t.Fatal(err)
	}
	if d.A != left.ID || d.B != right.ID || d.AddedLines != 1 || d.RemovedLines != 1 {
		t.Fatalf("diff %d..%d summary +%d -%d, want +1 -1", d.A, d.B, d.AddedLines, d.RemovedLines)
	}
	// Self-diff is the empty script; unknown versions are 404s.
	if d, err = c.Diff(ctx, merged.ID, merged.ID); err != nil || len(d.Ops) != 0 {
		t.Fatalf("self-diff: ops=%d err=%v", len(d.Ops), err)
	}
	if _, err = c.Diff(ctx, left.ID, 99); err == nil {
		t.Fatal("diff against unknown version succeeded")
	} else if ae, ok := err.(*APIError); !ok || ae.Status != http.StatusNotFound {
		t.Fatalf("diff against unknown version: %v, want 404", err)
	}

	scoped, err := c.CheckoutPath(ctx, merged.ID, "src")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := versioning.ParseManifest(scoped)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Path != "src/main.go" {
		t.Fatalf("src scope got %+v", entries)
	}
	if !reflect.DeepEqual(entries[0].Lines, []string{"package main", "// merged"}) {
		t.Fatalf("scoped content drifted: %q", entries[0].Lines)
	}
	// An empty scope falls back to the full checkout.
	full, err := c.CheckoutPath(ctx, merged.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, manifest("// merged")) {
		t.Fatalf("empty scope narrowed the checkout: %q", full)
	}
}
