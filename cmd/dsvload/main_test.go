package main

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/serve"
	"repro/tenant"
	"repro/versioning"
)

// testTarget serves a real dsvd handler stack for the generator to hit.
func testTarget(t *testing.T) string {
	t.Helper()
	repo := versioning.NewRepository("loadtest", versioning.RepositoryOptions{
		ReplanEvery:   16,
		EngineOptions: versioning.EngineOptions{SolverTimeout: 10 * time.Second, DisableILP: true},
	})
	ts := httptest.NewServer(serve.New(repo, serve.Options{}))
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestRunLoadEndToEnd(t *testing.T) {
	cfg := config{
		addr:        testTarget(t),
		mixes:       []string{"checkout", "mixed", "commit"},
		dist:        "zipf",
		zipfS:       1.2,
		duration:    250 * time.Millisecond,
		concurrency: 4,
		commitRatio: 0.2,
		preload:     12,
		seed:        3,
		timeout:     5 * time.Second,
		coalesce:    -1,
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mixes) != 3 {
		t.Fatalf("got %d mix reports, want 3", len(rep.Mixes))
	}
	for _, mr := range rep.Mixes {
		if mr.Ops == 0 {
			t.Fatalf("mix %q executed no operations", mr.Mix)
		}
		if mr.Errors != 0 {
			t.Fatalf("mix %q: %d errors against a healthy server", mr.Mix, mr.Errors)
		}
		if mr.Latency.Count == 0 || mr.Latency.P50US <= 0 ||
			mr.Latency.P99US < mr.Latency.P50US || mr.Latency.MaxUS < mr.Latency.P99US {
			t.Fatalf("mix %q latency summary inconsistent: %+v", mr.Mix, mr.Latency)
		}
		if mr.ThroughputOpsPerSec <= 0 {
			t.Fatalf("mix %q throughput = %f", mr.Mix, mr.ThroughputOpsPerSec)
		}
	}
	if co := rep.Mixes[0]; co.Commits != 0 || co.Checkouts != co.Ops {
		t.Fatalf("checkout mix ran commits: %+v", co)
	}
	if cm := rep.Mixes[2]; cm.Checkouts != 0 || cm.Commits != cm.Ops {
		t.Fatalf("commit mix ran checkouts: %+v", cm)
	}
	if mx := rep.Mixes[1]; mx.Commits == 0 || mx.Checkouts == 0 {
		t.Fatalf("mixed mix not mixed: %+v", mx)
	}
	// The report must round-trip as JSON (it is the BENCH_load.json contract).
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Mixes) != 3 || back.Mixes[1].PerOp["commit"].Ops == 0 {
		t.Fatalf("report did not survive a JSON round trip: %+v", back)
	}
}

// TestRunLoadMultiTenant drives a real multi-tenant stack with more
// tenants than the manager may keep open, so the load path covers
// lazy opens, LRU eviction, and transparent reopen — with zero errors.
func TestRunLoadMultiTenant(t *testing.T) {
	mgr := tenant.NewManager(tenant.Options{
		RootDir: t.TempDir(),
		MaxOpen: 3,
		Repo: versioning.RepositoryOptions{
			ReplanEvery:   -1,
			EngineOptions: versioning.EngineOptions{SolverTimeout: 10 * time.Second, DisableILP: true},
		},
	})
	t.Cleanup(func() { mgr.Close() })
	ts := httptest.NewServer(serve.NewMulti(mgr, serve.Options{}))
	t.Cleanup(ts.Close)

	cfg := config{
		addr:        ts.URL,
		mixes:       []string{"mixed"},
		dist:        "zipf",
		zipfS:       1.2,
		duration:    300 * time.Millisecond,
		concurrency: 4,
		commitRatio: 0.2,
		preload:     10,
		seed:        7,
		timeout:     5 * time.Second,
		coalesce:    -1,
		tenants:     10,
		tenantDist:  "zipf",
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tenants != 10 || rep.TenantDist != "zipf" {
		t.Fatalf("report tenant fields = %d %q", rep.Tenants, rep.TenantDist)
	}
	mr := rep.Mixes[0]
	if mr.Ops == 0 {
		t.Fatal("multi-tenant mix executed no operations")
	}
	if mr.Errors != 0 {
		t.Fatalf("%d errors against a healthy fleet (eviction must be transparent)", mr.Errors)
	}
	fleet := mgr.Fleet(10)
	if fleet.Tenants != 10 {
		t.Fatalf("fleet tenants = %d, want 10", fleet.Tenants)
	}
	if fleet.Evictions == 0 {
		t.Error("10 tenants with MaxOpen 3 never evicted")
	}
	// Uniform tenant dist also draws valid indices.
	rngT := rand.New(rand.NewSource(1))
	tp := newTenantPicker(config{tenantDist: "uniform"}, rngT, 10)
	for i := 0; i < 1000; i++ {
		if idx := tp.idx(); idx < 0 || idx >= 10 {
			t.Fatalf("uniform tenant idx %d out of range", idx)
		}
	}
}

func TestRunLoadOpenLoop(t *testing.T) {
	cfg := config{
		addr:        testTarget(t),
		mixes:       []string{"checkout"},
		dist:        "uniform",
		duration:    250 * time.Millisecond,
		concurrency: 2,
		rate:        200,
		preload:     6,
		seed:        5,
		timeout:     5 * time.Second,
		coalesce:    -1,
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mr := rep.Mixes[0]
	if mr.Ops == 0 || mr.Errors != 0 {
		t.Fatalf("open-loop mix = %+v", mr)
	}
	// 200/s for 250ms ≈ 50 arrivals; executed + dropped accounts for all.
	if mr.Ops+mr.Dropped > 60 {
		t.Fatalf("open loop overshot the arrival budget: ops=%d dropped=%d", mr.Ops, mr.Dropped)
	}
}

func TestPickerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, dist := range []string{"zipf", "uniform"} {
		p := newPicker(config{dist: dist, zipfS: 1.3}, rng, 40)
		seen := map[int64]bool{}
		for i := 0; i < 5000; i++ {
			id := p.id(40)
			if id < 0 || id >= 40 {
				t.Fatalf("%s: id %d out of [0,40)", dist, id)
			}
			seen[id] = true
		}
		if len(seen) < 5 {
			t.Fatalf("%s: only %d distinct ids in 5000 draws", dist, len(seen))
		}
	}
	// Zipf skews toward recent (high) ids: the newest version must be
	// the most popular draw.
	p := newPicker(config{dist: "zipf", zipfS: 1.3}, rng, 40)
	counts := map[int64]int{}
	for i := 0; i < 5000; i++ {
		counts[p.id(40)]++
	}
	for id, n := range counts {
		if n > counts[39] {
			t.Fatalf("zipf: id %d drawn %d times > newest id 39 (%d)", id, n, counts[39])
		}
	}
}

func TestMixRatioRejectsUnknown(t *testing.T) {
	if _, err := mixRatio(config{}, "shenanigans"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	base := config{dist: "zipf", zipfS: 1.2, concurrency: 4}
	if err := base.validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, cfg := range map[string]config{
		"zipf s=1":     {dist: "zipf", zipfS: 1.0, concurrency: 4},
		"zipf s=0":     {dist: "zipf", concurrency: 4},
		"unknown dist": {dist: "pareto", concurrency: 4},
		"zero workers": {dist: "uniform"},
		"absurd rate":  {dist: "uniform", concurrency: 4, rate: 2e9},
		"negative":     {dist: "uniform", concurrency: 4, rate: -1},
	} {
		if err := cfg.validate(); err == nil {
			t.Errorf("%s: accepted, want error (would silently measure the wrong workload)", name)
		}
	}
}
