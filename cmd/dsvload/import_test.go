package main

import (
	"testing"
	"time"

	"repro/internal/gitimport"
)

// TestRunLoadImportAndDiffMix preloads the generator's target from the
// importer's fixture history, then drives the diff mix against it.
func TestRunLoadImportAndDiffMix(t *testing.T) {
	if !gitimport.Available() {
		t.Skip("git binary not on PATH")
	}
	cfg := config{
		addr:        testTarget(t),
		mixes:       []string{"diff", "checkout"},
		dist:        "zipf",
		zipfS:       1.2,
		duration:    250 * time.Millisecond,
		concurrency: 4,
		preload:     1, // the import supplies the real versions
		seed:        5,
		timeout:     5 * time.Second,
		coalesce:    -1,
		importDir:   "../../internal/gitimport/testdata/fixture.git",
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ImportedCommits != 13 || rep.ImportedMerges != 2 {
		t.Fatalf("report shows %d commits / %d merges imported, want 13 / 2",
			rep.ImportedCommits, rep.ImportedMerges)
	}
	if len(rep.Mixes) != 2 {
		t.Fatalf("got %d mix reports, want 2", len(rep.Mixes))
	}
	dm := rep.Mixes[0]
	if dm.Diffs == 0 || dm.Diffs != dm.Ops || dm.Checkouts != 0 || dm.Commits != 0 {
		t.Fatalf("diff mix ran the wrong ops: %+v", dm)
	}
	if dm.Errors > 0 {
		t.Fatalf("diff mix errored %d times against a healthy server", dm.Errors)
	}
	if dm.PerOp["diff"].Ops != dm.Diffs {
		t.Fatalf("per-op diff report inconsistent: %+v", dm.PerOp)
	}
	// The imported manifests back the checkout mix too.
	cm := rep.Mixes[1]
	if cm.Checkouts == 0 || cm.Errors > 0 {
		t.Fatalf("checkout mix over imported history: %+v", cm)
	}
}
