package main

import "repro/internal/loadreport"

// The report schema lives in internal/loadreport so cmd/benchgate's
// load-regression gate consumes the exact types this generator writes;
// the aliases keep the rest of this package reading naturally.
type (
	Report         = loadreport.Report
	MixReport      = loadreport.MixReport
	OpReport       = loadreport.OpReport
	PhaseStats     = loadreport.PhaseStats
	PlanTrajectory = loadreport.PlanTrajectory
	HeatEntry      = loadreport.HeatEntry
)
