// Command dsvload is the workload generator for dsvd: it drives a live
// daemon through the typed client (repro/client) with configurable
// operation mixes, version-popularity distributions, and open- or
// closed-loop arrivals, then writes a machine-readable JSON report
// (latency percentiles, throughput, error counts) for BENCH_load.json
// and the CI load-smoke job.
//
// A typical run against a local daemon:
//
//	dsvd -addr :8080 &
//	dsvload -addr http://localhost:8080 -mix checkout,mixed,commit \
//	        -dist zipf -duration 10s -concurrency 16 -preload 64 \
//	        -out BENCH_load.json
//
// Against a multi-tenant daemon (dsvd -multi), -tenants N spreads the
// same mixes across N tenant namespaces (t000, t001, ...), each op
// first picking a tenant under -tenant-dist (zipf skews load onto a hot
// head of tenants — the pattern that exercises the manager's LRU and
// reopen path; uniform touches every tenant evenly, the worst case for
// a bounded -max-open):
//
//	dsvd -addr :8080 -multi -tenants-dir ./tenants -max-open 16 &
//	dsvload -addr http://localhost:8080 -tenants 100 -tenant-dist zipf \
//	        -mix mixed -duration 10s -preload 100
//
// Mixes:
//
//	checkout  100% checkouts over the committed versions
//	commit    100% commits (each a child of a random existing version)
//	mixed     90% checkout / 10% commit (tunable via -commit-ratio)
//	diff      100% GET /diff/{a}/{b} over random version pairs (one end
//	          popularity-picked, so zipf keeps a hot diff head)
//
// -import-dir DIR preloads each target with a real git repository's
// history instead of (before topping up with) the synthetic preload:
// commits become manifest-encoded versions with true parent edges,
// merges included, via the same importer as cmd/dsvimport.
//
// -dist zipf skews checkout popularity toward recent versions (rank 0 =
// newest) with exponent -zipf-s, the adversarial pattern that makes
// caches, singleflight, and client-side coalescing earn their keep;
// uniform spreads load evenly. -rate R switches from closed-loop
// (workers issue the next request when the previous returns) to
// open-loop (arrivals at R/s regardless of completions, the pattern
// that exposes queueing collapse); arrivals that find all workers busy
// and the backlog full are dropped and reported, so a drowning server
// shows up as drops + shed 429s, not a stalled generator.
//
// -trace-sample F sends an X-DSV-Trace header on that fraction of
// requests; after each mix the generator reads the traces back from
// the daemon's flight recorder (GET /tracez) and folds the span
// durations into a per-phase latency breakdown (trace_phases in the
// report) — the server-side view of where each op's time went
// (wal.fsync vs store.read vs admission), attributed per mix.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/gitimport"
	"repro/internal/metrics"
	"repro/serve"
	"repro/versioning"
)

type config struct {
	addr        string
	mixes       []string
	dist        string
	zipfS       float64
	duration    time.Duration
	concurrency int
	rate        float64
	commitRatio float64
	preload     int
	seed        int64
	timeout     time.Duration
	coalesce    time.Duration
	out         string
	failOnErr   bool
	tenants     int
	tenantDist  string
	traceSample float64
	etag        bool
	importDir   string
	importMax   int
}

// validate rejects configurations that would silently measure
// something other than what the report claims.
func (cfg config) validate() error {
	switch cfg.dist {
	case "uniform":
	case "zipf":
		if cfg.zipfS <= 1 {
			return fmt.Errorf("-zipf-s must be > 1 (got %g); rand.Zipf is undefined at s <= 1", cfg.zipfS)
		}
	default:
		return fmt.Errorf("unknown -dist %q (want zipf|uniform)", cfg.dist)
	}
	if cfg.concurrency <= 0 {
		return fmt.Errorf("-concurrency must be positive")
	}
	// The pacer is one goroutine on a time.Ticker; beyond ~100k/s it
	// would drop ticks and silently under-deliver while the report still
	// claims the configured rate, so refuse instead of misreporting.
	if cfg.rate < 0 || cfg.rate > 100_000 {
		return fmt.Errorf("-rate must be in [0, 100000] arrivals/s (got %g)", cfg.rate)
	}
	if cfg.tenants < 0 {
		return fmt.Errorf("-tenants must be >= 0 (got %d)", cfg.tenants)
	}
	switch cfg.tenantDist {
	case "uniform":
	case "", "zipf": // empty = the zipf default
		if cfg.tenants > 0 && cfg.zipfS <= 1 {
			return fmt.Errorf("-zipf-s must be > 1 for -tenant-dist zipf (got %g)", cfg.zipfS)
		}
	default:
		return fmt.Errorf("unknown -tenant-dist %q (want zipf|uniform)", cfg.tenantDist)
	}
	return nil
}

func main() {
	var cfg config
	var mixList string
	flag.StringVar(&cfg.addr, "addr", "http://localhost:8080", "dsvd base URL")
	flag.StringVar(&mixList, "mix", "checkout,mixed,commit", "comma-separated workload mixes: checkout|commit|mixed")
	flag.StringVar(&cfg.dist, "dist", "zipf", "version popularity: zipf|uniform")
	flag.Float64Var(&cfg.zipfS, "zipf-s", 1.2, "zipf exponent (>1; larger = more skew)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "run length per mix")
	flag.IntVar(&cfg.concurrency, "concurrency", 16, "concurrent workers")
	flag.Float64Var(&cfg.rate, "rate", 0, "open-loop arrivals per second (0 = closed loop)")
	flag.Float64Var(&cfg.commitRatio, "commit-ratio", 0.1, "commit fraction of the mixed workload")
	flag.IntVar(&cfg.preload, "preload", 64, "ensure at least this many committed versions before loading (spread across tenants with -tenants)")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload RNG seed")
	flag.DurationVar(&cfg.timeout, "timeout", 5*time.Second, "per-request client timeout")
	flag.DurationVar(&cfg.coalesce, "coalesce", -1, "client batch-coalescing window; negative (default) disables it so latencies measure the server, not the client's batching delay")
	flag.StringVar(&cfg.out, "out", "BENCH_load.json", "report path (- for stdout only)")
	flag.BoolVar(&cfg.failOnErr, "fail-on-error", false, "exit nonzero if any operation errored")
	flag.IntVar(&cfg.tenants, "tenants", 0, "spread load across N tenants of a dsvd -multi daemon (0 = single-repo mode)")
	flag.StringVar(&cfg.tenantDist, "tenant-dist", "zipf", "tenant popularity with -tenants: zipf|uniform")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 0, "fraction of requests traced end-to-end; the report gains a per-phase server-side latency breakdown")
	flag.BoolVar(&cfg.etag, "etag", false, "enable the client-side ETag validator cache: repeat checkouts revalidate with If-None-Match and come back as bodyless 304s")
	flag.StringVar(&cfg.importDir, "import-dir", "", "preload each target with this git repository's real history (manifest versions, merge edges included) before any synthetic preload")
	flag.IntVar(&cfg.importMax, "import-max", 0, "cap -import-dir at the oldest N commits (0 = the whole history)")
	flag.Parse()
	for _, m := range strings.Split(mixList, ",") {
		cfg.mixes = append(cfg.mixes, strings.TrimSpace(m))
	}
	rep, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsvload: %v\n", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsvload: encoding report: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	os.Stdout.Write(buf)
	if cfg.out != "" && cfg.out != "-" {
		if err := os.WriteFile(cfg.out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dsvload: writing %s: %v\n", cfg.out, err)
			os.Exit(1)
		}
	}
	if cfg.failOnErr {
		var errs int64
		for _, m := range rep.Mixes {
			errs += m.Errors
		}
		if errs > 0 {
			fmt.Fprintf(os.Stderr, "dsvload: %d operations errored\n", errs)
			os.Exit(2)
		}
	}
}

// api is the slice of the typed client both the root Client and a
// TenantClient satisfy — one target the workers drive.
type api interface {
	Commit(ctx context.Context, parent versioning.NodeID, lines []string) (client.CommitResult, error)
	CommitMerge(ctx context.Context, parents []versioning.NodeID, lines []string) (client.CommitResult, error)
	Checkout(ctx context.Context, id versioning.NodeID) ([]string, error)
	Diff(ctx context.Context, a, b versioning.NodeID) (client.DiffResult, error)
	Planz(ctx context.Context, topK int) (serve.Planz, error)
}

// target is one namespace under load: its API view and the live count
// of committed versions (the checkout id space).
type target struct {
	api      api
	name     string
	versions atomic.Int64
}

// tenantName formats the i-th synthetic tenant namespace.
func tenantName(i int) string { return fmt.Sprintf("t%03d", i) }

// runLoad preloads the target(s) and runs every configured mix in turn.
func runLoad(cfg config) (Report, error) {
	if cfg.tenantDist == "" {
		cfg.tenantDist = "zipf"
	}
	if err := cfg.validate(); err != nil {
		return Report{}, err
	}
	var tc *traceCollector
	copt := client.Options{
		RequestTimeout: cfg.timeout,
		CoalesceWindow: cfg.coalesce,
	}
	if cfg.traceSample > 0 {
		tc = newTraceCollector()
		copt.TraceSample = cfg.traceSample
		copt.OnTrace = tc.note
	}
	if cfg.etag {
		copt.ValidatorCacheBytes = 64 << 20
	}
	// The client outlives every mix; the hook routes each response's
	// wire size to whichever mix is currently running (nil between
	// mixes, so preload traffic is not counted).
	var active atomic.Pointer[loadState]
	copt.OnResponse = func(path string, n int64) {
		st := active.Load()
		if st == nil {
			return
		}
		if strings.Contains(path, "/checkout") {
			st.checkoutBytes.ObserveValue(n)
		} else if strings.Contains(path, "/commit") {
			st.commitBytes.ObserveValue(n)
		} else if strings.Contains(path, "/diff/") {
			st.diffBytes.ObserveValue(n)
		}
	}
	c := client.New(cfg.addr, copt)
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Healthz(ctx); err != nil {
		return Report{}, fmt.Errorf("probing %s: %w", cfg.addr, err)
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	var hist *gitimport.History
	if cfg.importDir != "" {
		h, err := gitimport.Load(ctx, cfg.importDir, gitimport.Options{MaxCommits: cfg.importMax})
		hist = h
		if err != nil {
			return Report{}, fmt.Errorf("loading -import-dir: %w", err)
		}
		fmt.Fprintf(os.Stderr, "dsvload: imported history %s: %d commits (%d merges)\n",
			cfg.importDir, len(hist.Commits), hist.Merges())
	}
	targets, err := buildTargets(ctx, c, cfg, rng, hist)
	if err != nil {
		return Report{}, err
	}
	// Preload commits may have been sampled too; discard them so the
	// first mix's phase breakdown covers only its own operations.
	if tc != nil {
		tc.take()
	}
	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Addr:        cfg.addr,
		Seed:        cfg.seed,
		Dist:        cfg.dist,
		Concurrency: cfg.concurrency,
		Tenants:     cfg.tenants,
	}
	if cfg.tenants > 0 {
		rep.TenantDist = cfg.tenantDist
	}
	if cfg.coalesce >= 0 {
		rep.CoalesceWindowMS = float64(cfg.coalesce) / float64(time.Millisecond)
		rep.Coalescing = true
	}
	rep.TraceSample = cfg.traceSample
	rep.ETagCache = cfg.etag
	if hist != nil {
		rep.ImportDir = cfg.importDir
		rep.ImportedCommits = len(hist.Commits)
		rep.ImportedMerges = hist.Merges()
	}
	for i, mix := range cfg.mixes {
		mr, err := runMix(c, tc, &active, targets, cfg, mix, cfg.seed+int64(i)*7919)
		if err != nil {
			return rep, fmt.Errorf("mix %q: %w", mix, err)
		}
		rep.Mixes = append(rep.Mixes, mr)
	}
	return rep, nil
}

// buildTargets resolves the namespaces under load and preloads each to
// its share of -preload committed versions: the single repository, or
// one target per tenant (every tenant gets at least one version, so
// checkouts always have something to hit).
func buildTargets(ctx context.Context, c *client.Client, cfg config, rng *rand.Rand, hist *gitimport.History) ([]*target, error) {
	if cfg.tenants == 0 {
		versions, err := c.Healthz(ctx)
		if err != nil {
			return nil, err
		}
		t := &target{api: c, name: ""}
		if versions, err = importTarget(ctx, t, hist, versions); err != nil {
			return nil, err
		}
		if err := preloadTarget(ctx, t, versions, cfg.preload, rng); err != nil {
			return nil, err
		}
		return []*target{t}, nil
	}
	perTenant := cfg.preload / cfg.tenants
	if perTenant < 1 {
		perTenant = 1
	}
	targets := make([]*target, cfg.tenants)
	for i := range targets {
		tc := c.Tenant(tenantName(i))
		t := &target{api: tc, name: tc.Name()}
		st, err := tc.Stats(ctx)
		if err != nil {
			return nil, fmt.Errorf("probing tenant %s: %w", t.name, err)
		}
		versions := st.Versions
		if versions, err = importTarget(ctx, t, hist, versions); err != nil {
			return nil, err
		}
		if err := preloadTarget(ctx, t, versions, perTenant, rng); err != nil {
			return nil, err
		}
		targets[i] = t
	}
	return targets, nil
}

// importTarget replays an imported git history (if any) into an empty
// target, preserving parent edges and merge topology, and returns the
// target's resulting version count. A target that already holds
// versions is left alone — re-running dsvload against a warm daemon
// must not duplicate the whole history.
func importTarget(ctx context.Context, t *target, hist *gitimport.History, have int) (int, error) {
	if hist == nil || have > 0 {
		return have, nil
	}
	_, err := hist.Replay(ctx, func(ctx context.Context, parents []versioning.NodeID, lines []string) (versioning.NodeID, error) {
		var cr client.CommitResult
		var err error
		switch len(parents) {
		case 0:
			cr, err = t.api.Commit(ctx, versioning.NoParent, lines)
		case 1:
			cr, err = t.api.Commit(ctx, parents[0], lines)
		default:
			cr, err = t.api.CommitMerge(ctx, parents, lines)
		}
		if err != nil {
			return 0, err
		}
		have = cr.Versions
		return cr.ID, nil
	})
	if err != nil {
		return have, fmt.Errorf("importing history into %q: %w", t.name, err)
	}
	return have, nil
}

// preloadTarget commits until t holds at least want versions.
func preloadTarget(ctx context.Context, t *target, have, want int, rng *rand.Rand) error {
	for have < want {
		parent := versioning.NodeID(have - 1)
		if have == 0 {
			parent = versioning.NoParent
		}
		cr, err := t.api.Commit(ctx, parent, synthLines(rng, have))
		if err != nil {
			return fmt.Errorf("preloading %s version %d: %w", t.name, have, err)
		}
		have = cr.Versions
	}
	t.versions.Store(int64(have))
	return nil
}

// mixRatio maps a mix name to its commit fraction ("diff" is all reads
// and carries ratio 0; runMix switches its read op to /diff).
func mixRatio(cfg config, mix string) (float64, error) {
	switch mix {
	case "checkout", "diff":
		return 0, nil
	case "commit":
		return 1, nil
	case "mixed":
		return cfg.commitRatio, nil
	default:
		return 0, fmt.Errorf("unknown mix (want checkout|commit|mixed|diff)")
	}
}

// loadState is the per-mix shared state the workers drive.
type loadState struct {
	targets       []*target
	diffMode      bool // read ops are GET /diff/{a}/{b} instead of checkouts
	checkoutHG    metrics.Histogram
	commitHG      metrics.Histogram
	diffHG        metrics.Histogram
	checkoutBytes metrics.Histogram // response wire sizes via OnResponse
	commitBytes   metrics.Histogram
	diffBytes     metrics.Histogram
	checkouts     atomic.Int64
	commits       atomic.Int64
	diffs         atomic.Int64
	errors        atomic.Int64
	throttled     atomic.Int64 // 429 shed responses (reported separately)
	dropped       atomic.Int64 // open-loop arrivals with no capacity left
}

// runMix drives one workload mix for cfg.duration and summarizes it.
func runMix(c *client.Client, tc *traceCollector, active *atomic.Pointer[loadState], targets []*target, cfg config, mix string, seed int64) (MixReport, error) {
	ratio, err := mixRatio(cfg, mix)
	if err != nil {
		return MixReport{}, err
	}
	ctx := context.Background()
	for _, t := range targets {
		if t.versions.Load() == 0 {
			return MixReport{}, fmt.Errorf("target %q has no versions (use -preload)", t.name)
		}
	}
	st := &loadState{targets: targets, diffMode: mix == "diff"}
	active.Store(st)
	defer active.Store(nil)
	reval0 := c.Revalidated()

	start := time.Now()
	deadline := start.Add(cfg.duration)
	var wg sync.WaitGroup
	var arrivals chan struct{}
	if cfg.rate > 0 {
		// Open loop: a pacer emits arrivals at the configured rate; the
		// bounded backlog decouples it from worker completions.
		arrivals = make(chan struct{}, 4*cfg.concurrency)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(arrivals)
			tick := time.NewTicker(time.Duration(float64(time.Second) / cfg.rate))
			defer tick.Stop()
			for now := range tick.C {
				if now.After(deadline) {
					return
				}
				select {
				case arrivals <- struct{}{}:
				default:
					st.dropped.Add(1)
				}
			}
		}()
	}
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			picks := make([]*picker, len(targets))
			for i, t := range targets {
				picks[i] = newPicker(cfg, rng, int(t.versions.Load()))
			}
			tpick := newTenantPicker(cfg, rng, len(targets))
			for {
				if arrivals != nil {
					if _, ok := <-arrivals; !ok {
						return
					}
				} else if !time.Now().Before(deadline) {
					return
				}
				ti := tpick.idx()
				st.step(ctx, rng, targets[ti], picks[ti], ratio, w)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	mr := MixReport{
		Mix:             mix,
		Dist:            cfg.dist,
		CommitRatio:     ratio,
		OpenLoopRPS:     cfg.rate,
		DurationSeconds: elapsed.Seconds(),
		Checkouts:       st.checkouts.Load(),
		Commits:         st.commits.Load(),
		Diffs:           st.diffs.Load(),
		Errors:          st.errors.Load(),
		Throttled:       st.throttled.Load(),
		Dropped:         st.dropped.Load(),
		PerOp:           map[string]OpReport{},
	}
	mr.Ops = mr.Checkouts + mr.Commits + mr.Diffs
	mr.Revalidated = c.Revalidated() - reval0
	if elapsed > 0 {
		mr.ThroughputOpsPerSec = float64(mr.Ops) / elapsed.Seconds()
	}
	var merged metrics.Histogram
	if mr.Checkouts > 0 {
		mr.PerOp["checkout"] = OpReport{
			Ops:          mr.Checkouts,
			Latency:      st.checkoutHG.Summary(),
			ResponseSize: sizeSummary(&st.checkoutBytes),
		}
	}
	if mr.Commits > 0 {
		mr.PerOp["commit"] = OpReport{
			Ops:          mr.Commits,
			Latency:      st.commitHG.Summary(),
			ResponseSize: sizeSummary(&st.commitBytes),
		}
	}
	if mr.Diffs > 0 {
		mr.PerOp["diff"] = OpReport{
			Ops:          mr.Diffs,
			Latency:      st.diffHG.Summary(),
			ResponseSize: sizeSummary(&st.diffBytes),
		}
	}
	merged.Merge(&st.checkoutHG)
	merged.Merge(&st.commitHG)
	merged.Merge(&st.diffHG)
	mr.Latency = merged.Summary()
	var mergedBytes metrics.Histogram
	mergedBytes.Merge(&st.checkoutBytes)
	mergedBytes.Merge(&st.commitBytes)
	mergedBytes.Merge(&st.diffBytes)
	if sz := sizeSummary(&mergedBytes); sz != nil {
		mr.ResponseSize = sz
		mr.ResponseBytes = sz.TotalBytes
		if elapsed > 0 {
			mr.ThroughputBytesPerSec = float64(sz.TotalBytes) / elapsed.Seconds()
		}
	}
	if tc != nil {
		attachTracePhases(ctx, c, tc, &mr)
	}
	attachPlanz(ctx, targets[0], &mr)
	return mr, nil
}

// attachPlanz snapshots the daemon's plan observatory when a mix ends,
// via GET /planz on the first target — under -tenants that is the
// zipf-hot head tenant, the namespace whose maintenance the mix most
// exercised. Errors leave the field absent (older daemons have no
// /planz endpoint).
func attachPlanz(ctx context.Context, t *target, mr *MixReport) {
	pz, err := t.api.Planz(ctx, 5)
	if err != nil {
		return
	}
	pt := &PlanTrajectory{Passes: pz.HistoryTotal}
	for _, rec := range pz.History {
		if rec.Failed {
			pt.FailedInWindow++
		}
	}
	// The most recent completed pass carries the race detail worth
	// keeping in the report.
	for i := len(pz.History) - 1; i >= 0; i-- {
		rec := pz.History[i]
		if rec.Failed {
			continue
		}
		pt.Winner = rec.Winner
		pt.Trigger = rec.Trigger
		pt.CacheHit = rec.CacheHit
		pt.SolveUS = rec.SolveUS
		pt.MigrationObjects = rec.MigrationObjects
		pt.MigrationBytes = rec.MigrationBytes
		for _, rep := range rec.Reports {
			pt.Solvers = append(pt.Solvers, rep.Solver)
		}
		break
	}
	for _, h := range pz.Heat {
		pt.Heat = append(pt.Heat, HeatEntry{Version: int32(h.Version), Score: h.Score, Reads: h.Reads})
	}
	mr.Plan = pt
}

// step executes one operation against t and records its latency.
func (st *loadState) step(ctx context.Context, rng *rand.Rand, t *target, pick *picker, ratio float64, w int) {
	if rng.Float64() < ratio {
		parent := versioning.NodeID(pick.id(t.versions.Load()))
		t0 := time.Now()
		cr, err := t.api.Commit(ctx, parent, synthLines(rng, int(st.commits.Load())*1000+w))
		st.commitHG.Observe(time.Since(t0))
		st.commits.Add(1)
		if err != nil {
			st.recordErr(err)
			return
		}
		t.versions.Store(int64(cr.Versions))
		return
	}
	if st.diffMode {
		// One endpoint is popularity-picked (a hot head under zipf keeps
		// the diff response cache honest), the other uniform over the
		// whole id space.
		a := versioning.NodeID(pick.id(t.versions.Load()))
		b := versioning.NodeID(rng.Int63n(t.versions.Load()))
		t0 := time.Now()
		_, err := t.api.Diff(ctx, a, b)
		st.diffHG.Observe(time.Since(t0))
		st.diffs.Add(1)
		if err != nil {
			st.recordErr(err)
		}
		return
	}
	id := versioning.NodeID(pick.id(t.versions.Load()))
	t0 := time.Now()
	_, err := t.api.Checkout(ctx, id)
	st.checkoutHG.Observe(time.Since(t0))
	st.checkouts.Add(1)
	if err != nil {
		st.recordErr(err)
	}
}

// sizeSummary renders h as a report field, nil when nothing was
// observed (e.g. an older server or a hook that never fired) so empty
// distributions stay out of the JSON.
func sizeSummary(h *metrics.Histogram) *metrics.SizeSummary {
	if h.Count() == 0 {
		return nil
	}
	s := h.Snapshot().SizeSummary()
	return &s
}

func (st *loadState) recordErr(err error) {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
		st.throttled.Add(1)
		return
	}
	st.errors.Add(1)
}

// picker draws version ids under the configured popularity model.
type picker struct {
	zipf *rand.Zipf
	rng  *rand.Rand
	base int // version count when the zipf ranking was frozen
}

func newPicker(cfg config, rng *rand.Rand, versions int) *picker {
	p := &picker{rng: rng, base: versions}
	if cfg.dist == "zipf" && versions > 1 {
		// Rank 0 = newest version at mix start; the skew models a hot
		// head of recent versions, the worst case for naive caching.
		p.zipf = rand.NewZipf(rng, cfg.zipfS, 1, uint64(versions-1))
	}
	return p
}

// id draws one version id < versions (the live count, so uniform runs
// cover versions committed mid-mix).
func (p *picker) id(versions int64) int64 {
	if versions <= 0 {
		return 0
	}
	if p.zipf != nil {
		rank := int64(p.zipf.Uint64())
		id := int64(p.base) - 1 - rank
		if id < 0 {
			id = 0
		}
		return id
	}
	return p.rng.Int63n(versions)
}

// tenantPicker draws tenant indices under -tenant-dist. Zipf rank 0 =
// tenant 0, modelling a hot head of busy tenants over a long tail that
// mostly sits evicted.
type tenantPicker struct {
	zipf *rand.Zipf
	rng  *rand.Rand
	n    int
}

func newTenantPicker(cfg config, rng *rand.Rand, n int) *tenantPicker {
	tp := &tenantPicker{rng: rng, n: n}
	if cfg.tenantDist == "zipf" && n > 1 {
		tp.zipf = rand.NewZipf(rng, cfg.zipfS, 1, uint64(n-1))
	}
	return tp
}

func (tp *tenantPicker) idx() int {
	if tp.n <= 1 {
		return 0
	}
	if tp.zipf != nil {
		return int(tp.zipf.Uint64())
	}
	return tp.rng.Intn(tp.n)
}

// synthLines generates a deterministic ~20-line version body; n salts
// the content so successive commits produce real (non-empty) diffs.
func synthLines(rng *rand.Rand, n int) []string {
	lines := make([]string, 18+rng.Intn(6))
	for i := range lines {
		lines[i] = fmt.Sprintf("line %02d of synthetic version %d token %x", i, n, rng.Int63())
	}
	return lines
}
