package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/client"
	"repro/internal/trace"
)

// maxCollectedTraces bounds the trace IDs held for post-mix matching.
// The cap only limits how many traces can be matched against the
// server's flight recorder, not how many were sampled — and the
// recorder's own ring is far smaller, so nothing of value is lost.
const maxCollectedTraces = 8192

// traceCollector accumulates the trace IDs the server returns for
// sampled requests (via the client's OnTrace hook), keyed by trace ID
// with the op inferred from the request path. Drained once per mix.
type traceCollector struct {
	mu      sync.Mutex
	ids     map[string]string // trace ID -> "commit" | "checkout"
	sampled map[string]int64  // op -> sampled request count
}

func newTraceCollector() *traceCollector {
	return &traceCollector{
		ids:     make(map[string]string),
		sampled: make(map[string]int64),
	}
}

// note is the client.Options.OnTrace hook; it runs on request
// goroutines, so it must stay cheap.
func (tc *traceCollector) note(path, id string) {
	var op string
	switch {
	case strings.Contains(path, "/commit"):
		op = "commit"
	case strings.Contains(path, "/checkout"):
		op = "checkout"
	default:
		return
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.sampled[op]++
	if len(tc.ids) < maxCollectedTraces {
		tc.ids[id] = op
	}
}

// take returns and resets the collected state, so each mix's phase
// breakdown covers only its own operations.
func (tc *traceCollector) take() (ids map[string]string, sampled map[string]int64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	ids, sampled = tc.ids, tc.sampled
	tc.ids = make(map[string]string)
	tc.sampled = make(map[string]int64)
	return ids, sampled
}

// attachTracePhases reads the daemon's flight recorder and folds the
// span durations of every trace this mix sampled — and the recorder
// still retains — into per-op, per-phase latency stats. A trace falls
// out of the match when the recorder's ring evicted it, so
// trace_matched <= trace_sampled; the phases of what remains are
// still an unbiased view of where server-side time went.
func attachTracePhases(ctx context.Context, c *client.Client, tc *traceCollector, mr *MixReport) {
	ids, sampled := tc.take()
	for op, n := range sampled {
		rep := mr.PerOp[op]
		rep.TraceSampled = n
		mr.PerOp[op] = rep
	}
	if len(ids) == 0 {
		return
	}
	snap, err := c.Tracez(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsvload: reading /tracez: %v\n", err)
		return
	}
	type agg struct {
		spans int64
		total float64
		max   float64
	}
	phases := make(map[string]map[string]*agg) // op -> span name -> agg
	matched := make(map[string]int64)
	for _, tds := range [][]trace.TraceData{snap.Recent, snap.Outliers} {
		for _, td := range tds {
			op, ok := ids[td.TraceID]
			if !ok {
				continue
			}
			delete(ids, td.TraceID) // a trace counts once even if retained twice
			matched[op]++
			pm := phases[op]
			if pm == nil {
				pm = make(map[string]*agg)
				phases[op] = pm
			}
			for _, sp := range td.Spans {
				if sp.Parent == 0 {
					continue // the root span is the whole request, not a phase
				}
				a := pm[sp.Name]
				if a == nil {
					a = &agg{}
					pm[sp.Name] = a
				}
				a.spans++
				a.total += sp.DurationUS
				if sp.DurationUS > a.max {
					a.max = sp.DurationUS
				}
			}
		}
	}
	for op, pm := range phases {
		rep := mr.PerOp[op]
		rep.TraceMatched = matched[op]
		rep.TracePhases = make(map[string]PhaseStats, len(pm))
		for name, a := range pm {
			rep.TracePhases[name] = PhaseStats{
				Spans:   a.spans,
				MeanUS:  a.total / float64(a.spans),
				MaxUS:   a.max,
				TotalUS: a.total,
			}
		}
		mr.PerOp[op] = rep
	}
}
