// Command dsvbench regenerates the paper's evaluation (Section 7): the
// Table 4 dataset overview, the MSR figures 10–12, the BMR figure 13, the
// Theorem 1 adversarial-LMG demonstration and the footnote-7 treewidth
// measurements.
//
// It also renders the solver-portfolio comparison (-exp portfolio): the
// same head-to-head methodology, but produced by racing all solvers
// concurrently through the portfolio engine, with an optional per-solver
// -timeout.
//
// Usage:
//
//	dsvbench -exp all -scale 0.12 -points 6
//	dsvbench -exp fig10 -scale 1 -points 10 -ilp=false
//	dsvbench -exp portfolio -scale 0.12 -timeout 2s
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/graph"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all|table4|fig10|fig11|fig12|fig13|thm1|treewidth|portfolio")
		scale    = flag.Float64("scale", 0.12, "dataset size scale (1.0 = full Table 4 sizes)")
		points   = flag.Int("points", 6, "constraint samples per curve")
		epsilon  = flag.Float64("epsilon", 0.05, "DP-MSR approximation parameter")
		states   = flag.Int("maxstates", 512, "DP-MSR per-node state cap")
		ilp      = flag.Bool("ilp", true, "compute the exact OPT line where affordable")
		ilpNodes = flag.Int("ilpnodes", 20000, "branch-and-bound node cap per OPT point")
		timeout  = flag.Duration("timeout", 0, "per-solver deadline in the portfolio race (0 = none)")
	)
	flag.Parse()

	cfg := experiments.Config{
		Scale:         *scale,
		SweepPoints:   *points,
		Epsilon:       *epsilon,
		MaxStates:     *states,
		ILP:           *ilp,
		MaxILPNodes:   *ilpNodes,
		SolverTimeout: *timeout,
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false
	if run("table4") {
		fmt.Println("== Table 4: dataset overview ==")
		fmt.Println(experiments.RenderStats(experiments.Table4(cfg)))
		ran = true
	}
	if run("thm1") {
		fmt.Println("== Theorem 1: LMG is arbitrarily bad on adversarial chains ==")
		fmt.Println(experiments.RenderTheorem1(experiments.Theorem1([]graph.Cost{10, 30, 100, 300})))
		ran = true
	}
	if run("treewidth") {
		fmt.Println("== Footnote 7: dataset treewidth (heuristic upper bounds, MMD lower bound) ==")
		fmt.Println(experiments.RenderTreewidths(experiments.Treewidths(cfg)))
		ran = true
	}
	figures := []struct {
		name string
		f    func(experiments.Config) []experiments.Result
	}{
		{"fig10", experiments.Figure10},
		{"fig11", experiments.Figure11},
		{"fig12", experiments.Figure12},
		{"fig13", experiments.Figure13},
		{"portfolio", experiments.PortfolioComparison},
	}
	for _, fig := range figures {
		if !run(fig.name) {
			continue
		}
		for _, r := range fig.f(cfg) {
			fmt.Println(experiments.Render(r))
		}
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "dsvbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
