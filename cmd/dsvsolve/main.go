// Command dsvsolve solves one dataset-versioning problem instance from a
// JSON graph file.
//
// Usage:
//
//	dsvsolve -in graph.json -problem MSR -constraint 500000 -algo lmg-all
//	dsvsolve -in graph.json -problem BMR -constraint 2000 -algo dp
//	dsvsolve -in graph.json -problem MSR -constraint 500000 -portfolio -timeout 5s
//	dsvsolve -in graph.json -problem MSR -constraint 500000 -json
//	dsvsolve -in graph.json -problem MST
//
// Problems: MST, SPT, MSR, MMR, BSR, BMR (Table 1 of the paper).
// Algorithms: lmg, lmg-all, dp, mp, ilp — each applicable to a subset of
// the problems; "auto" picks the paper's recommendation (Section 7.4:
// LMG-All / DP-MSR for MSR, DP-BMR for BMR). -portfolio ignores -algo and
// instead races every applicable solver concurrently through
// versioning.Engine, printing the per-solver comparison alongside the
// winning plan; -timeout bounds each solver within the race.
//
// -json suppresses the human-readable output and instead emits the plan
// as a versioning.PlanSummary — the same machine-readable shape the dsvd
// daemon serves at /plan — so scripted pipelines can consume either.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dptree"
	"repro/internal/graph"
	"repro/internal/ilp"
	"repro/internal/lmg"
	"repro/internal/mp"
	"repro/internal/plan"
	"repro/versioning"
)

func main() {
	var (
		in         = flag.String("in", "", "input graph JSON (required)")
		problemStr = flag.String("problem", "MSR", "MST|SPT|MSR|MMR|BSR|BMR")
		constraint = flag.Int64("constraint", 0, "storage bound (MSR/MMR) or retrieval bound (BSR/BMR)")
		algo       = flag.String("algo", "auto", "auto|lmg|lmg-all|dp|mp|ilp")
		portfolio  = flag.Bool("portfolio", false, "race every applicable solver concurrently and report each")
		timeout    = flag.Duration("timeout", 0, "per-solver deadline inside the portfolio race (0 = none)")
		verbose    = flag.Bool("v", false, "print the full plan")
		asJSON     = flag.Bool("json", false, "emit the plan as JSON (versioning.PlanSummary, dsvd's /plan shape)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dsvsolve: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	g, err := graph.Read(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	problem, err := core.ParseProblem(*problemStr)
	if err != nil {
		fail(err)
	}

	var sol core.Solution
	var winner string
	if *portfolio {
		eng := versioning.NewEngine(versioning.EngineOptions{SolverTimeout: *timeout})
		res, err := eng.Solve(context.Background(), g, problem, graph.Cost(*constraint))
		if !*asJSON {
			printReports(res.Reports)
		}
		if err != nil {
			fail(err)
		}
		winner = res.Winner
		if !*asJSON {
			fmt.Printf("winner:         %s\n", winner)
		}
		sol = res.Solution
	} else {
		sol, err = solve(g, problem, graph.Cost(*constraint), *algo)
		if err != nil {
			fail(err)
		}
	}
	if *asJSON {
		summary := versioning.Summarize(g, sol.Plan, problem, graph.Cost(*constraint))
		summary.Winner = winner
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("problem:        %s (constraint %d)\n", problem, *constraint)
	fmt.Printf("storage:        %d\n", sol.Cost.Storage)
	fmt.Printf("sum retrieval:  %d\n", sol.Cost.SumRetrieval)
	fmt.Printf("max retrieval:  %d\n", sol.Cost.MaxRetrieval)
	fmt.Printf("materialized:   %d of %d versions\n", len(sol.Plan.MaterializedNodes()), g.N())
	fmt.Printf("stored deltas:  %d of %d\n", len(sol.Plan.StoredEdges()), g.M())
	if *verbose {
		fmt.Printf("materialized versions: %v\n", sol.Plan.MaterializedNodes())
		fmt.Printf("stored delta ids:      %v\n", sol.Plan.StoredEdges())
	}
}

// printReports renders the per-solver race table.
func printReports(reports []versioning.SolverReport) {
	fmt.Printf("%-12s %12s %14s %14s %10s  %s\n", "solver", "storage", "sum retrieval", "max retrieval", "ms", "status")
	for _, r := range reports {
		status := "ok"
		if r.Err != nil {
			status = r.Err.Error()
		}
		ms := float64(r.Duration.Microseconds()) / 1000
		if r.Err != nil {
			fmt.Printf("%-12s %12s %14s %14s %10.2f  %s\n", r.Solver, "—", "—", "—", ms, status)
			continue
		}
		fmt.Printf("%-12s %12d %14d %14d %10.2f  %s\n",
			r.Solver, r.Cost.Storage, r.Cost.SumRetrieval, r.Cost.MaxRetrieval, ms, status)
	}
}

func solve(g *graph.Graph, problem core.Problem, c graph.Cost, algo string) (core.Solution, error) {
	wrap := func(p *plan.Plan, err error) (core.Solution, error) {
		if err != nil {
			return core.Solution{}, err
		}
		return core.Solution{Plan: p, Cost: plan.Evaluate(g, p)}, nil
	}
	dpMSR := func(s graph.Cost) (core.Solution, error) {
		r, err := dptree.MSROnGraph(g, s, 0, dptree.MSROptions{Epsilon: 0.05, Geometric: true, MaxStates: 256})
		if errors.Is(err, dptree.ErrInfeasible) {
			return core.Solution{}, core.ErrInfeasible
		}
		return wrap(r.Plan, err)
	}
	dpBMR := func(r graph.Cost) (core.Solution, error) {
		res, err := dptree.BMROnGraph(g, r, 0)
		if errors.Is(err, dptree.ErrInfeasible) {
			return core.Solution{}, core.ErrInfeasible
		}
		return wrap(res.Plan, err)
	}
	switch problem {
	case core.ProblemMST:
		return core.MST(g)
	case core.ProblemSPT:
		return core.SPT(g, 0)
	case core.ProblemMSR:
		switch algo {
		case "lmg":
			r, err := lmg.LMG(g, c)
			return wrap(r.Plan, err)
		case "auto", "lmg-all":
			r, err := lmg.LMGAll(g, c, lmg.Options{})
			return wrap(r.Plan, err)
		case "dp":
			return dpMSR(c)
		case "ilp":
			r, err := ilp.SolveMSR(g, c, ilp.Options{})
			return wrap(r.Plan, err)
		}
	case core.ProblemBMR:
		switch algo {
		case "mp":
			r, err := mp.Solve(g, c)
			return wrap(r.Plan, err)
		case "auto", "dp":
			return dpBMR(c)
		}
	case core.ProblemMMR:
		return core.MMRViaBMR(g, c, dpBMR)
	case core.ProblemBSR:
		return core.BSRViaMSR(g, c, dpMSR)
	}
	return core.Solution{}, fmt.Errorf("dsvsolve: algorithm %q does not solve %s", algo, problem)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dsvsolve: %v\n", err)
	os.Exit(1)
}
