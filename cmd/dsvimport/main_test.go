package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gitimport"
	"repro/serve"
	"repro/versioning"
)

const fixtureDir = "../../internal/gitimport/testdata/fixture.git"

func loadSummary(t *testing.T, path string) summary {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestRunAnalyze imports the fixture into memory and checks the plan
// summary the analyze sink reports.
func TestRunAnalyze(t *testing.T) {
	if !gitimport.Available() {
		t.Skip("git binary not on PATH")
	}
	out := filepath.Join(t.TempDir(), "sum.json")
	if err := run(config{src: fixtureDir, ref: "HEAD", maxBlob: 1 << 20, out: out, repoName: "fx"}); err != nil {
		t.Fatal(err)
	}
	sum := loadSummary(t, out)
	if sum.Commits != 13 || sum.Merges != 2 || sum.Versions != 13 {
		t.Fatalf("analyze summary %+v, want 13 commits / 2 merges / 13 versions", sum)
	}
	if sum.StorageCost <= 0 || sum.SumRetrieval <= 0 {
		t.Fatalf("analyze mode reported no plan costs: %+v", sum)
	}
}

// TestRunHTTP imports the fixture into a live single-repo daemon over
// the wire and verifies the server ends up with every version.
func TestRunHTTP(t *testing.T) {
	if !gitimport.Available() {
		t.Skip("git binary not on PATH")
	}
	repo := versioning.NewRepository("t", versioning.RepositoryOptions{
		ReplanEvery:        -1,
		MaintenanceWorkers: -1,
		EngineOptions:      versioning.EngineOptions{DisableILP: true},
	})
	defer repo.Close()
	ts := httptest.NewServer(serve.New(repo, serve.Options{}))
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "sum.json")
	cfg := config{src: fixtureDir, ref: "HEAD", maxBlob: 1 << 20, addr: ts.URL, replan: true, out: out}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	sum := loadSummary(t, out)
	if sum.Versions != 13 {
		t.Fatalf("daemon holds %d versions after import, want 13", sum.Versions)
	}
	if sum.LastVersion != 12 {
		t.Fatalf("tip mapped to version %d, want 12", sum.LastVersion)
	}
	if repo.Stats().Versions != 13 {
		t.Fatalf("server repo has %d versions", repo.Stats().Versions)
	}
}
