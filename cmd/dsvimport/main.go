// Command dsvimport ingests a real git repository's commit history
// into the dataset-versioning store, turning every commit into a
// manifest-encoded version with its true parent edges — merge commits
// become multi-parent versions whose extra edges enter the storage
// graph as candidate deltas. This is how the solver portfolio gets
// measured against genuine version DAGs instead of synthetic repogen
// graphs (the Section 7.1 "real repository" workloads).
//
// Three sinks, picked by flags:
//
//	dsvimport -src /path/to/repo -addr http://localhost:8080
//	    import into a live daemon over HTTP (add -tenant NAME for a
//	    multi-tenant daemon)
//	dsvimport -src /path/to/repo -data-dir ./data
//	    import into a local durable repository directory, no daemon
//	dsvimport -src /path/to/repo
//	    analyze only: import into memory, re-plan, and report the
//	    resulting storage-plan costs
//
// The importer shells out to the git binary (rev-list / ls-tree /
// cat-file --batch); binary and oversized blobs are skipped, so the
// manifests stay line-oriented text. A JSON summary of the run goes to
// stdout (and -out, when set).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/client"
	"repro/internal/gitimport"
	"repro/versioning"
)

type config struct {
	src      string
	ref      string
	maxN     int
	maxBlob  int64
	addr     string
	tenant   string
	dataDir  string
	replan   bool
	out      string
	repoName string
}

// summary is the machine-readable import report.
type summary struct {
	Src             string  `json:"src"`
	Ref             string  `json:"ref"`
	Commits         int     `json:"commits"`
	Merges          int     `json:"merges"`
	SkippedParents  int     `json:"skipped_parents,omitempty"`
	UniqueBlobs     int     `json:"unique_blobs"`
	ImportSeconds   float64 `json:"import_seconds"`
	CommitsPerSec   float64 `json:"commits_per_sec"`
	Versions        int     `json:"versions"`
	FirstVersion    int64   `json:"first_version"`
	LastVersion     int64   `json:"last_version"`
	StorageCost     float64 `json:"storage_cost,omitempty"`
	SumRetrieval    float64 `json:"sum_retrieval_cost,omitempty"`
	MaxRetrieval    float64 `json:"max_retrieval_cost,omitempty"`
	MaterializedPct float64 `json:"materialized_pct,omitempty"`
}

func main() {
	var cfg config
	flag.StringVar(&cfg.src, "src", ".", "git repository (work tree or bare) to import")
	flag.StringVar(&cfg.ref, "ref", "HEAD", "history tip to walk")
	flag.IntVar(&cfg.maxN, "max-commits", 0, "import only the oldest N commits (0 = all)")
	flag.Int64Var(&cfg.maxBlob, "max-blob-bytes", 1<<20, "skip blobs larger than this")
	flag.StringVar(&cfg.addr, "addr", "", "import into the dsvd daemon at this base URL")
	flag.StringVar(&cfg.tenant, "tenant", "", "tenant namespace on a multi-tenant daemon (with -addr)")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "import into a local durable repository directory (no daemon)")
	flag.BoolVar(&cfg.replan, "replan", false, "force a storage re-plan after the import")
	flag.StringVar(&cfg.out, "out", "", "also write the JSON summary to this path")
	flag.StringVar(&cfg.repoName, "name", "imported", "repository name with -data-dir or in analyze mode")
	flag.Parse()
	if cfg.addr != "" && cfg.dataDir != "" {
		fmt.Fprintln(os.Stderr, "dsvimport: -addr and -data-dir are mutually exclusive")
		os.Exit(1)
	}
	if !gitimport.Available() {
		fmt.Fprintln(os.Stderr, "dsvimport: no git binary on PATH")
		os.Exit(1)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dsvimport: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	ctx := context.Background()
	h, err := gitimport.Load(ctx, cfg.src, gitimport.Options{
		Ref:          cfg.ref,
		MaxCommits:   cfg.maxN,
		MaxBlobBytes: cfg.maxBlob,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dsvimport: loaded %d commits (%d merges, %d unique blobs) from %s\n",
		len(h.Commits), h.Merges(), h.UniqueBlobs, cfg.src)

	sum := summary{
		Src:            cfg.src,
		Ref:            h.Ref,
		Commits:        len(h.Commits),
		Merges:         h.Merges(),
		SkippedParents: h.SkippedParents,
		UniqueBlobs:    h.UniqueBlobs,
	}
	start := time.Now()
	switch {
	case cfg.addr != "":
		err = importHTTP(ctx, cfg, h, &sum)
	default:
		err = importLocal(ctx, cfg, h, &sum)
	}
	if err != nil {
		return err
	}
	sum.ImportSeconds = time.Since(start).Seconds()
	if sum.ImportSeconds > 0 {
		sum.CommitsPerSec = float64(sum.Commits) / sum.ImportSeconds
	}

	buf, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	os.Stdout.Write(buf)
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, buf, 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", cfg.out, err)
		}
	}
	return nil
}

// importHTTP replays the history into a live daemon through the typed
// client — the same wire path real tooling would use.
func importHTTP(ctx context.Context, cfg config, h *gitimport.History, sum *summary) error {
	c := client.New(cfg.addr, client.Options{})
	defer c.Close()
	commit := c.Commit
	commitMerge := c.CommitMerge
	replan := c.Replan
	stats := c.Stats
	if cfg.tenant != "" {
		tc := c.Tenant(cfg.tenant)
		commit, commitMerge, replan, stats = tc.Commit, tc.CommitMerge, tc.Replan, tc.Stats
	}
	ids, err := h.Replay(ctx, func(ctx context.Context, parents []versioning.NodeID, lines []string) (versioning.NodeID, error) {
		var cr client.CommitResult
		var err error
		switch len(parents) {
		case 0:
			cr, err = commit(ctx, versioning.NoParent, lines)
		case 1:
			cr, err = commit(ctx, parents[0], lines)
		default:
			cr, err = commitMerge(ctx, parents, lines)
		}
		return cr.ID, err
	})
	if err != nil {
		return err
	}
	recordIDs(sum, ids)
	if cfg.replan {
		if _, err := replan(ctx); err != nil {
			return fmt.Errorf("re-plan after import: %w", err)
		}
	}
	st, err := stats(ctx)
	if err != nil {
		return err
	}
	sum.Versions = st.Versions
	recordPlan(sum, st)
	return nil
}

// importLocal replays the history into a repository in this process: a
// durable one under -data-dir, or an in-memory analyze-only one.
func importLocal(ctx context.Context, cfg config, h *gitimport.History, sum *summary) error {
	opt := versioning.RepositoryOptions{DataDir: cfg.dataDir}
	var r *versioning.Repository
	var err error
	if cfg.dataDir != "" {
		r, err = versioning.Open(cfg.repoName, opt)
		if err != nil {
			return err
		}
	} else {
		r = versioning.NewRepository(cfg.repoName, opt)
		cfg.replan = true // analyze mode exists to report plan costs
	}
	defer r.Close()
	ids, err := h.Replay(ctx, func(ctx context.Context, parents []versioning.NodeID, lines []string) (versioning.NodeID, error) {
		if len(parents) == 0 {
			return r.Commit(ctx, versioning.NoParent, lines)
		}
		return r.CommitMerge(ctx, parents, lines)
	})
	if err != nil {
		return err
	}
	recordIDs(sum, ids)
	if cfg.replan {
		if err := r.Replan(ctx); err != nil {
			return fmt.Errorf("re-plan after import: %w", err)
		}
	}
	st := r.Stats()
	sum.Versions = st.Versions
	recordPlan(sum, st)
	return nil
}

func recordIDs(sum *summary, ids []versioning.NodeID) {
	if len(ids) > 0 {
		sum.FirstVersion = int64(ids[0])
		sum.LastVersion = int64(ids[len(ids)-1])
	}
}

func recordPlan(sum *summary, st versioning.RepositoryStats) {
	sum.StorageCost = float64(st.Storage)
	sum.SumRetrieval = float64(st.SumRetrieval)
	sum.MaxRetrieval = float64(st.MaxRetrieval)
	if st.Versions > 0 {
		sum.MaterializedPct = 100 * float64(st.Blobs) / float64(st.Versions)
	}
}
