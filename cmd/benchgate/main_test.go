package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/loadreport"
	"repro/internal/metrics"
)

func writeReport(t *testing.T, name string, commitP99, checkoutP99 float64, errs int64) string {
	t.Helper()
	rep := loadreport.Report{
		Addr: "test",
		Mixes: []loadreport.MixReport{{
			Mix:    "mixed",
			Ops:    1000,
			Errors: errs,
			PerOp: map[string]loadreport.OpReport{
				"commit":   {Ops: 300, Latency: metrics.LatencySummary{Count: 300, P99US: commitP99}},
				"checkout": {Ops: 700, Latency: metrics.LatencySummary{Count: 700, P99US: checkoutP99}},
			},
		}},
	}
	path := filepath.Join(t.TempDir(), name)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadGatePasses(t *testing.T) {
	base := writeReport(t, "base.json", 100_000, 5_000, 0)
	head := writeReport(t, "head.json", 110_000, 8_000, 0) // commit +10%, checkout +60%: both within gates
	if err := runLoad(base, head, 1.25, 2.0, false); err != nil {
		t.Fatalf("within-threshold head failed the gate: %v", err)
	}
	// A dramatic improvement obviously passes too.
	better := writeReport(t, "better.json", 30_000, 1_000, 0)
	if err := runLoad(base, better, 1.25, 2.0, false); err != nil {
		t.Fatalf("improved head failed the gate: %v", err)
	}
}

func TestLoadGateFailsOnCommitRegression(t *testing.T) {
	base := writeReport(t, "base.json", 100_000, 5_000, 0)
	head := writeReport(t, "head.json", 140_000, 5_000, 0) // commit +40%
	err := runLoad(base, head, 1.25, 2.0, false)
	if err == nil {
		t.Fatal("40%% commit p99 regression passed a 25%% gate")
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Fatalf("unexpected gate error: %v", err)
	}
}

func TestLoadGateFailsOnCheckoutRegression(t *testing.T) {
	base := writeReport(t, "base.json", 100_000, 5_000, 0)
	head := writeReport(t, "head.json", 100_000, 12_000, 0) // checkout +140%
	err := runLoad(base, head, 1.25, 2.0, false)
	if err == nil {
		t.Fatal("2.4x checkout p99 regression passed a 2x gate")
	}
	if !strings.Contains(err.Error(), "checkout") {
		t.Fatalf("gate error does not name the checkout op: %v", err)
	}
	// A negative checkout threshold demotes checkout p99 to info-only.
	if err := runLoad(base, head, 1.25, -1, false); err != nil {
		t.Fatalf("disabled checkout gate still failed: %v", err)
	}
}

func TestLoadGateFailsOnErrors(t *testing.T) {
	base := writeReport(t, "base.json", 100_000, 5_000, 0)
	head := writeReport(t, "head.json", 100_000, 5_000, 3)
	if err := runLoad(base, head, 1.25, 2.0, false); err == nil {
		t.Fatal("head run with errors passed the gate")
	}
}

func TestLoadGateAllowsMissingBase(t *testing.T) {
	head := writeReport(t, "head.json", 100_000, 5_000, 0)
	missing := filepath.Join(t.TempDir(), "nope.json")
	if err := runLoad(missing, head, 1.25, 2.0, true); err != nil {
		t.Fatalf("-allow-missing-base still failed on a missing baseline: %v", err)
	}
	// Without the flag a missing baseline stays an error, and the flag
	// only forgives nonexistence — not an unreadable baseline.
	if err := runLoad(missing, head, 1.25, 2.0, false); err == nil {
		t.Fatal("missing baseline passed without -allow-missing-base")
	}
	garbled := filepath.Join(t.TempDir(), "garbled.json")
	if err := os.WriteFile(garbled, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runLoad(garbled, head, 1.25, 2.0, true); err == nil {
		t.Fatal("corrupt baseline passed under -allow-missing-base")
	}
}

func TestLoadGateRefusesEmptyComparison(t *testing.T) {
	base := writeReport(t, "base.json", 0, 0, 0) // zero p99s: nothing comparable
	head := writeReport(t, "head.json", 100_000, 5_000, 0)
	if err := runLoad(base, head, 1.25, 2.0, false); err == nil {
		t.Fatal("gate with no comparable p99 reported success")
	}
	if err := runLoad("", "", 1.25, 2.0, false); err == nil {
		t.Fatal("gate with no inputs reported success")
	}
}
