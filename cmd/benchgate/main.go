// Command benchgate is the CI bench-regression gate: it compares two
// `go test -bench` outputs (merge-base vs PR head) and exits nonzero
// when the geometric-mean slowdown across the shared benchmarks
// exceeds -threshold. benchstat prints the human-readable table in the
// same job; benchgate owns the pass/fail decision.
//
//	go test -run='^$' -bench=Checkout -count=4 . > head.txt
//	git checkout $(git merge-base origin/main HEAD)
//	go test -run='^$' -bench=Checkout -count=4 . > base.txt
//	benchgate -base base.txt -head head.txt -threshold 1.25
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchparse"
)

func main() {
	var (
		basePath  = flag.String("base", "", "bench output of the merge base")
		headPath  = flag.String("head", "", "bench output of the PR head")
		threshold = flag.Float64("threshold", 1.25, "max allowed geomean slowdown (head/base)")
	)
	flag.Parse()
	if err := run(*basePath, *headPath, *threshold); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}

func run(basePath, headPath string, threshold float64) error {
	if basePath == "" || headPath == "" {
		return fmt.Errorf("both -base and -head are required")
	}
	parse := func(path string) (map[string][]float64, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return benchparse.Parse(f)
	}
	base, err := parse(basePath)
	if err != nil {
		return err
	}
	head, err := parse(headPath)
	if err != nil {
		return err
	}
	comps, geomean, err := benchparse.Compare(base, head)
	if err != nil {
		return err
	}
	for _, c := range comps {
		fmt.Printf("%-55s %12.0f -> %12.0f ns/op  %+.1f%%\n",
			c.Name, c.BaseNs, c.HeadNs, 100*(c.Ratio-1))
	}
	fmt.Printf("geomean over %d benchmarks: %+.1f%% (threshold %+.1f%%)\n",
		len(comps), 100*(geomean-1), 100*(threshold-1))
	if geomean > threshold {
		return fmt.Errorf("geomean regression %.1f%% exceeds %.1f%%",
			100*(geomean-1), 100*(threshold-1))
	}
	return nil
}
