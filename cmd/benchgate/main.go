// Command benchgate is the CI bench-regression gate. It has four
// modes, all exiting nonzero on failure:
//
// Microbenchmarks (-base/-head): compares two `go test -bench` outputs
// (merge-base vs PR head) and fails when the geometric-mean slowdown
// across the shared benchmarks exceeds -threshold. benchstat prints the
// human-readable table in the same job; benchgate owns the pass/fail
// decision.
//
//	go test -run='^$' -bench=Checkout -count=4 . > head.txt
//	git checkout $(git merge-base origin/main HEAD)
//	go test -run='^$' -bench=Checkout -count=4 . > base.txt
//	benchgate -base base.txt -head head.txt -threshold 1.25
//
// Load reports (-load-base/-load-head): compares two dsvload JSON
// reports (the committed BENCH_load_multi.json baseline vs a fresh run)
// and fails when any mix's commit p99 latency regresses past
// -threshold, any mix's checkout p99 regresses past the looser
// -checkout-threshold (checkouts under load are noisier, so their gate
// defaults to 2x; negative disables it), or when the head run recorded
// errors. This pins both serving paths end to end — journaling, group
// commit, and plan maintenance on the write side; response caching,
// reconstruction, and the packfile read tier on the read side.
//
//	benchgate -load-base BENCH_load_multi.json -load-head /tmp/head.json -threshold 1.25
//
// -allow-missing-base makes a nonexistent baseline file a note instead
// of a failure: the gate prints what it skipped and exits 0. CI uses it
// for baselines that land in the same PR as the job that gates them
// (e.g. BENCH_import.json) — the first run has nothing to compare.
//
// Metrics lint (-metrics): validates a Prometheus text exposition — a
// file, or fetched live when the argument starts with http:// or
// https:// — with the pure-Go checker in internal/metrics (a
// promtool-equivalent for the subset this repo emits): family
// contiguity, duplicate series, bucket monotonicity and cumulativity,
// +Inf/_count agreement. The CI load-smoke job runs it against a live
// daemon's /metricsz so a malformed exposition fails the PR.
//
//	benchgate -metrics http://localhost:8080/metricsz
//
// Plan-observatory smoke (-planz): fetches a daemon's GET /planz (file
// or live URL, like -metrics) and fails unless the observatory is
// actually populated: at least one completed (non-failed) maintenance
// pass whose solver-race report is non-empty, and a non-empty
// per-version heat top-k. The CI load-smoke job runs it after dsvload
// so a daemon that silently stops recording passes fails the PR.
//
//	benchgate -planz http://localhost:8080/planz
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/benchparse"
	"repro/internal/loadreport"
	"repro/internal/metrics"
)

func main() {
	var (
		basePath    = flag.String("base", "", "bench output of the merge base")
		headPath    = flag.String("head", "", "bench output of the PR head")
		loadBase    = flag.String("load-base", "", "baseline dsvload JSON report (e.g. the committed BENCH_load_multi.json)")
		loadHead    = flag.String("load-head", "", "fresh dsvload JSON report to gate")
		metricsIn   = flag.String("metrics", "", "lint a Prometheus text exposition: a file path, or an http(s):// URL fetched live")
		planzIn     = flag.String("planz", "", "smoke-check a plan observatory snapshot (GET /planz): a file path, or an http(s):// URL fetched live")
		threshold   = flag.Float64("threshold", 1.25, "max allowed slowdown (head/base): bench geomean, or per-mix commit p99 in load mode")
		checkoutThr = flag.Float64("checkout-threshold", 2.0, "load mode: max allowed per-mix checkout p99 slowdown (looser than -threshold because checkouts under load are noisier; negative disables)")
		allowNoBase = flag.Bool("allow-missing-base", false, "load mode: a nonexistent -load-base file skips the gate (exit 0) instead of failing — for baselines landing in the same PR")
	)
	flag.Parse()
	var err error
	switch {
	case *planzIn != "":
		if *basePath != "" || *headPath != "" || *loadBase != "" || *loadHead != "" || *metricsIn != "" {
			err = fmt.Errorf("-planz is a separate mode; drop the bench/load/metrics flags")
		} else {
			err = runPlanz(*planzIn)
		}
	case *metricsIn != "":
		if *basePath != "" || *headPath != "" || *loadBase != "" || *loadHead != "" {
			err = fmt.Errorf("-metrics is a separate mode; drop the bench/load flags")
		} else {
			err = runMetrics(*metricsIn)
		}
	case *loadBase != "" || *loadHead != "":
		if *basePath != "" || *headPath != "" {
			err = fmt.Errorf("-base/-head and -load-base/-load-head are separate modes; pick one")
		} else {
			err = runLoad(*loadBase, *loadHead, *threshold, *checkoutThr, *allowNoBase)
		}
	default:
		err = run(*basePath, *headPath, *threshold)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}

func run(basePath, headPath string, threshold float64) error {
	if basePath == "" || headPath == "" {
		return fmt.Errorf("both -base and -head are required")
	}
	parse := func(path string) (map[string][]float64, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return benchparse.Parse(f)
	}
	base, err := parse(basePath)
	if err != nil {
		return err
	}
	head, err := parse(headPath)
	if err != nil {
		return err
	}
	comps, geomean, err := benchparse.Compare(base, head)
	if err != nil {
		return err
	}
	for _, c := range comps {
		fmt.Printf("%-55s %12.0f -> %12.0f ns/op  %+.1f%%\n",
			c.Name, c.BaseNs, c.HeadNs, 100*(c.Ratio-1))
	}
	fmt.Printf("geomean over %d benchmarks: %+.1f%% (threshold %+.1f%%)\n",
		len(comps), 100*(geomean-1), 100*(threshold-1))
	if geomean > threshold {
		return fmt.Errorf("geomean regression %.1f%% exceeds %.1f%%",
			100*(geomean-1), 100*(threshold-1))
	}
	return nil
}

// runLoad gates head's per-mix commit p99 against base's commit
// threshold and checkout p99 against the separate (looser)
// checkoutThreshold. Commit is the journaled, fsynced,
// maintenance-adjacent write path; checkout the cached, packfile-backed
// read path — regressing either silently would defeat the point of the
// load smoke. Checkout p99 under load is noisier than commit p99, so
// its gate defaults to 2x and can be disabled (checkoutThreshold <= 0)
// without losing the commit gate.
func runLoad(basePath, headPath string, threshold, checkoutThreshold float64, allowMissingBase bool) error {
	if basePath == "" || headPath == "" {
		return fmt.Errorf("both -load-base and -load-head are required")
	}
	base, err := loadreport.Load(basePath)
	if err != nil {
		if allowMissingBase && os.IsNotExist(err) {
			fmt.Printf("baseline %s does not exist; gate skipped (-allow-missing-base)\n", basePath)
			return nil
		}
		return err
	}
	head, err := loadreport.Load(headPath)
	if err != nil {
		return err
	}
	baseMixes := map[string]loadreport.MixReport{}
	for _, m := range base.Mixes {
		baseMixes[m.Mix] = m
	}
	var failures []string
	compared := 0
	for _, hm := range head.Mixes {
		if hm.Errors > 0 {
			failures = append(failures, fmt.Sprintf("mix %s: head run recorded %d errors", hm.Mix, hm.Errors))
		}
		bm, ok := baseMixes[hm.Mix]
		if !ok {
			fmt.Printf("mix %-10s not in baseline, skipped\n", hm.Mix)
			continue
		}
		for _, op := range []string{"commit", "checkout"} {
			bo, bok := bm.PerOp[op]
			ho, hok := hm.PerOp[op]
			if !bok || !hok || bo.Latency.P99US <= 0 {
				continue
			}
			ratio := ho.Latency.P99US / bo.Latency.P99US
			opThreshold := threshold
			if op == "checkout" {
				opThreshold = checkoutThreshold
			}
			gated := opThreshold > 0
			mark := " (info)"
			if gated {
				mark = ""
				compared++
			}
			fmt.Printf("mix %-10s %-8s p99 %12.0f -> %12.0f us  %+.1f%%%s\n",
				hm.Mix, op, bo.Latency.P99US, ho.Latency.P99US, 100*(ratio-1), mark)
			if gated && ratio > opThreshold {
				failures = append(failures, fmt.Sprintf(
					"mix %s: %s p99 %.0fus -> %.0fus (%+.1f%%) exceeds %+.1f%%",
					hm.Mix, op, bo.Latency.P99US, ho.Latency.P99US, 100*(ratio-1), 100*(opThreshold-1)))
			}
		}
	}
	if compared == 0 {
		return fmt.Errorf("no gated p99 shared between %s and %s — nothing compared", basePath, headPath)
	}
	fmt.Printf("gated %d op p99s across the shared mixes (commit threshold %+.1f%%, checkout %+.1f%%)\n",
		compared, 100*(threshold-1), 100*(checkoutThreshold-1))
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, f)
		}
		return fmt.Errorf("%d load regression(s): %s", len(failures), strings.Join(failures, "; "))
	}
	return nil
}

// openSource opens src for reading: an http(s):// URL is fetched live,
// anything else is a file path.
func openSource(src string) (io.ReadCloser, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return nil, fmt.Errorf("fetching %s: %w", src, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("fetching %s: status %s", src, resp.Status)
		}
		return resp.Body, nil
	}
	return os.Open(src)
}

// runMetrics lints one Prometheus text exposition, read from a file or
// fetched from a live endpoint.
func runMetrics(src string) error {
	r, err := openSource(src)
	if err != nil {
		return err
	}
	defer r.Close()
	families, series, err := metrics.Lint(r)
	if err != nil {
		return fmt.Errorf("exposition lint failed for %s: %w", src, err)
	}
	fmt.Printf("metrics lint ok: %d families, %d series (%s)\n", families, series, src)
	return nil
}

// runPlanz smoke-checks one plan-observatory snapshot. The decode is
// deliberately loose (only the fields the gate inspects) so the gate
// keeps working as serve.Planz grows.
func runPlanz(src string) error {
	r, err := openSource(src)
	if err != nil {
		return err
	}
	defer r.Close()
	var pz struct {
		History []struct {
			Winner  string `json:"winner"`
			Failed  bool   `json:"failed"`
			Reports []struct {
				Solver string `json:"solver"`
			} `json:"reports"`
		} `json:"history"`
		HistoryTotal int64 `json:"history_total"`
		Heat         []struct {
			Version int32 `json:"version"`
		} `json:"heat"`
	}
	if err := json.NewDecoder(r).Decode(&pz); err != nil {
		return fmt.Errorf("decoding planz from %s: %w", src, err)
	}
	completed := 0
	solvers := map[string]bool{}
	for _, rec := range pz.History {
		if rec.Failed || len(rec.Reports) == 0 {
			continue
		}
		completed++
		for _, rep := range rec.Reports {
			solvers[rep.Solver] = true
		}
	}
	if completed == 0 {
		return fmt.Errorf("planz smoke failed for %s: no completed maintenance pass with a solver-race report (history=%d, lifetime=%d)",
			src, len(pz.History), pz.HistoryTotal)
	}
	if len(pz.Heat) == 0 {
		return fmt.Errorf("planz smoke failed for %s: heat top-k is empty — no checkout read was tracked", src)
	}
	fmt.Printf("planz smoke ok: %d completed pass(es) of %d recorded, %d solver(s) raced, heat top-k has %d version(s) (%s)\n",
		completed, pz.HistoryTotal, len(solvers), len(pz.Heat), src)
	return nil
}
