package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/versioning"
)

// server wires a versioning.Repository to HTTP. Endpoints:
//
//	POST /commit         {"parent": -1, "lines": [...]} -> commitResponse
//	GET  /checkout/{id}  -> checkoutResponse
//	POST /checkout       {"ids": [0, 3, 7]} -> batch checkoutResponse list
//	POST /replan         force a portfolio re-plan now
//	GET  /plan           -> versioning.PlanSummary
//	GET  /stats          -> versioning.RepositoryStats
//	GET  /healthz        liveness probe
type server struct {
	repo *versioning.Repository
	mux  *http.ServeMux
}

func newServer(repo *versioning.Repository) *server {
	s := &server{repo: repo, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /commit", s.handleCommit)
	s.mux.HandleFunc("GET /checkout/{id}", s.handleCheckout)
	s.mux.HandleFunc("POST /checkout", s.handleCheckoutBatch)
	s.mux.HandleFunc("POST /replan", s.handleReplan)
	s.mux.HandleFunc("GET /plan", s.handlePlan)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// handleHealthz is the liveness/readiness probe: cheap (one RLock plus
// atomic counters), so orchestrators can poll it even mid-re-plan.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"versions": s.repo.Versions(),
	})
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type commitRequest struct {
	// Parent is the version the commit derives from; -1 or omitted
	// commits a root.
	Parent *versioning.NodeID `json:"parent"`
	Lines  []string           `json:"lines"`
}

type commitResponse struct {
	ID       versioning.NodeID `json:"id"`
	Versions int               `json:"versions"`
}

type checkoutResponse struct {
	ID    versioning.NodeID `json:"id"`
	Lines []string          `json:"lines"`
	Error string            `json:"error,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes caps request bodies so a hostile payload cannot exhaust
// memory before JSON decoding even starts.
const maxBodyBytes = 64 << 20

func (s *server) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req commitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad commit request: %v", err)})
		return
	}
	parent := versioning.NoParent
	if req.Parent != nil {
		parent = *req.Parent
	}
	id, err := s.repo.Commit(r.Context(), parent, req.Lines)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, versioning.ErrClosed) {
			status = http.StatusServiceUnavailable
		} else if strings.Contains(err.Error(), "does not exist") {
			status = http.StatusUnprocessableEntity
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, commitResponse{ID: id, Versions: s.repo.Versions()})
}

func (s *server) handleCheckout(w http.ResponseWriter, r *http.Request) {
	id64, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad version id: %v", err)})
		return
	}
	lines, err := s.repo.Checkout(r.Context(), versioning.NodeID(id64))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			status = http.StatusRequestTimeout
		} else if strings.Contains(err.Error(), "unknown version") {
			status = http.StatusNotFound
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, checkoutResponse{ID: versioning.NodeID(id64), Lines: lines})
}

type checkoutBatchRequest struct {
	IDs []versioning.NodeID `json:"ids"`
}

func (s *server) handleCheckoutBatch(w http.ResponseWriter, r *http.Request) {
	var req checkoutBatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad batch request: %v", err)})
		return
	}
	results := s.repo.CheckoutBatch(r.Context(), req.IDs)
	out := make([]checkoutResponse, len(results))
	for i, res := range results {
		out[i] = checkoutResponse{ID: req.IDs[i], Lines: res.Lines}
		if res.Err != nil {
			out[i].Error = res.Err.Error()
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleReplan(w http.ResponseWriter, r *http.Request) {
	if err := s.repo.Replan(r.Context()); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, versioning.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, s.repo.Summary())
}

func (s *server) handlePlan(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.repo.Summary())
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.repo.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
