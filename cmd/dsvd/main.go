// Command dsvd is the dataset-versioning serving daemon: a Repository
// behind HTTP. Clients commit versions and check them out; the daemon
// keeps the storage layout optimal by re-solving the configured regime
// through the portfolio engine every -replan-every commits and migrating
// its content-addressed store to the winning plan.
//
// Quick start:
//
//	dsvd -addr :8080 -problem MSR -replan-every 8 &
//	curl -s localhost:8080/commit -d '{"parent":-1,"lines":["v0 line"]}'
//	curl -s localhost:8080/commit -d '{"parent":0,"lines":["v0 line","v1 line"]}'
//	curl -s localhost:8080/checkout/1
//	curl -s localhost:8080/plan
//	curl -s localhost:8080/stats
//
// -demo N preloads a seeded synthetic history of N commits so /checkout
// and /plan have something to serve immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/versioning"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		problemStr  = flag.String("problem", "MSR", "re-planning regime: MSR|MMR|BSR|BMR (or MST|SPT baselines)")
		constraint  = flag.Int64("constraint", 0, "regime bound; 0 derives one from the minimum-storage plan")
		autoFactor  = flag.Float64("auto-factor", 2, "slack multiplier for automatic storage budgets")
		replanEvery = flag.Int("replan-every", 8, "re-plan and migrate every k commits (negative: only via POST /replan)")
		cache       = flag.Int("cache", 256, "checkout LRU entries (negative disables)")
		workers     = flag.Int("workers", 0, "batch checkout workers (0 = GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-solver deadline inside re-planning races")
		ilp         = flag.Bool("ilp", false, "include the exact ILP in MSR re-planning races")
		demo        = flag.Int("demo", 0, "preload a synthetic history of N commits")
		demoSeed    = flag.Int64("demo-seed", 42, "seed for -demo")
	)
	flag.Parse()
	problem, err := core.ParseProblem(*problemStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsvd: %v\n", err)
		os.Exit(2)
	}
	repo := versioning.NewRepository("dsvd", versioning.RepositoryOptions{
		Problem:      problem,
		Constraint:   *constraint,
		AutoFactor:   *autoFactor,
		ReplanEvery:  *replanEvery,
		CacheEntries: *cache,
		Workers:      *workers,
		EngineOptions: versioning.EngineOptions{
			SolverTimeout: *timeout,
			DisableILP:    !*ilp,
		},
	})
	if *demo > 0 {
		src := versioning.GenerateRepo("dsvd-demo", *demo, *demoSeed)
		ctx := context.Background()
		for v := 0; v < src.Graph.N(); v++ {
			if _, err := repo.Commit(ctx, src.Parents[v], src.Contents[v]); err != nil {
				log.Fatalf("dsvd: preloading demo commit %d: %v", v, err)
			}
		}
		log.Printf("dsvd: preloaded %d demo commits (seed %d)", *demo, *demoSeed)
	}
	log.Printf("dsvd: serving %s (constraint %d, re-plan every %d commits) on %s",
		problem, *constraint, *replanEvery, *addr)
	if err := http.ListenAndServe(*addr, newServer(repo)); err != nil {
		log.Fatalf("dsvd: %v", err)
	}
}
