// Command dsvd is the dataset-versioning serving daemon: one Repository
// — or a whole multi-tenant fleet of them — behind HTTP (the handler
// stack lives in package serve). Clients commit versions and check them
// out; the daemon keeps every storage layout optimal by re-solving the
// configured regime through the portfolio engine every -replan-every
// commits and migrating its content-addressed store to the winning plan.
//
// Quick start (single repository):
//
//	dsvd -addr :8080 -problem MSR -replan-every 8 &
//	curl -s localhost:8080/commit -d '{"parent":-1,"lines":["v0 line"]}'
//	curl -s localhost:8080/commit -d '{"parent":0,"lines":["v0 line","v1 line"]}'
//	curl -s localhost:8080/checkout/1
//	curl -s localhost:8080/plan
//	curl -s localhost:8080/statsz
//
// Multi-tenant fleet (-multi): every repository route moves under
// /t/{tenant}/..., tenants open lazily on first touch with their own
// data dir under -tenants-dir, an LRU (-max-open) bounds open
// repositories (evicted tenants flush cleanly and reopen transparently
// on the next request), per-tenant quotas (-quota-max-objects,
// -quota-max-bytes, -quota-commit-rate, -quota-commit-burst) shed
// over-limit commits with 429 + Retry-After, and GET /fleetz reports
// open/eviction counts plus per-tenant top-k usage:
//
//	dsvd -addr :8080 -multi -tenants-dir ./tenants -max-open 64 &
//	curl -s localhost:8080/t/alice/commit -d '{"parent":-1,"lines":["hi"]}'
//	curl -s localhost:8080/t/alice/checkout/0
//	curl -s localhost:8080/fleetz
//
// Storage is pluggable: by default versions live in a sharded in-memory
// backend (-shards shards); with -data-dir (or -multi -tenants-dir) the
// daemon runs on durable disk backends plus write-ahead commit
// journals, and a restart replays the journals so the full committed
// history survives a kill. Concurrent commits share journal writes
// (-group-commit, on by default): one leader writes — and with -fsync,
// fsyncs — the whole batch, and each commit is acknowledged only after
// its batch is durable. Plan maintenance (the -replan-every re-solve
// and store migration) runs in background workers (-maintenance) so it
// never sits on the commit path. SIGINT and SIGTERM trigger a graceful
// shutdown: in-flight requests drain, then every open repository's
// journal and backend are flushed, all within the -drain deadline.
//
// Serving is hardened for real traffic: admission control bounds
// concurrent requests (-max-inflight, -max-queue, -queue-wait) and
// sheds overload with 429 + Retry-After; concurrent checkouts of the
// same version are singleflighted per tenant; per-endpoint
// latency/throughput counters are served at /statsz. Drive it with
// cmd/dsvload (which speaks both modes; see -tenants).
//
// Observability: -trace-sample samples that fraction of requests into
// end-to-end traces (clients can force one with an X-DSV-Trace
// header regardless of the rate); the flight recorder keeps the last
// traces plus per-endpoint tail outliers at GET /tracez, and SIGQUIT
// dumps the same snapshot to the log. GET /metricsz serves every
// internal histogram and counter in Prometheus text format,
// -slow-log logs requests over a threshold with their trace IDs, and
// -debug-addr serves net/http/pprof on a separate listener. -version
// prints the embedded build identity and exits.
//
// -demo N preloads a seeded synthetic history of N commits so /checkout
// and /plan have something to serve immediately (single-repo mode only).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/serve"
	"repro/tenant"
	"repro/versioning"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dsvd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		problemStr  = flag.String("problem", "MSR", "re-planning regime: MSR|MMR|BSR|BMR (or MST|SPT baselines)")
		constraint  = flag.Int64("constraint", 0, "regime bound; 0 derives one from the minimum-storage plan")
		autoFactor  = flag.Float64("auto-factor", 2, "slack multiplier for automatic storage budgets")
		replanEvery = flag.Int("replan-every", 8, "re-plan and migrate every k commits (negative: only via POST /replan)")
		cache       = flag.Int("cache", 256, "checkout LRU entries (negative disables)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "checkout LRU byte budget (0 = 64 MiB)")
		respCache   = flag.Int64("resp-cache", 0, "encoded checkout-response cache byte budget (0 = 64 MiB, negative disables)")
		workers     = flag.Int("workers", 0, "batch checkout workers (0 = GOMAXPROCS)")
		shards      = flag.Int("shards", 0, "in-memory backend shards (0 = default; ignored with -data-dir)")
		dataDir     = flag.String("data-dir", "", "durable storage root (objects + commit journal); empty serves from memory")
		fsync       = flag.Bool("fsync", false, "fsync the commit journal on every commit (with -data-dir)")
		groupCommit = flag.Bool("group-commit", true, "batch concurrent commits into one journal write/fsync (with -data-dir or -tenants-dir)")
		linger      = flag.Duration("group-commit-linger", 0, "how long a batch leader waits for more commits to join (0 = 200µs with -fsync, none otherwise; negative disables)")
		maintenance = flag.Int("maintenance", 0, "background plan-maintenance workers per repository (0 = 1; negative re-plans synchronously inside commits)")
		planHistory = flag.Int("plan-history", 0, "maintenance passes retained in the plan-observatory ring served at GET /planz (0 = 64, negative disables)")
		heatHL      = flag.Duration("heat-halflife", 0, "per-version read-heat EWMA half-life (0 = 5m default, negative disables heat tracking)")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-solver deadline inside re-planning races")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests and storage flush")
		maxInFlight = flag.Int("max-inflight", 0, "admission control: max concurrently executing requests (0 = 4*GOMAXPROCS, negative disables)")
		maxQueue    = flag.Int("max-queue", 0, "admission control: waiting slots before load shedding (0 = 2*max-inflight)")
		queueWait   = flag.Duration("queue-wait", 100*time.Millisecond, "admission control: max time a request queues for a slot")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint sent with 429 responses")
		ilp         = flag.Bool("ilp", false, "include the exact ILP in MSR re-planning races")
		demo        = flag.Int("demo", 0, "preload a synthetic history of N commits (single-repo mode)")
		demoSeed    = flag.Int64("demo-seed", 42, "seed for -demo")

		version     = flag.Bool("version", false, "print the embedded build identity and exit")
		traceSample = flag.Float64("trace-sample", 0, "fraction of requests traced end-to-end (0 traces only client-forced requests; see /tracez)")
		traceRecent = flag.Int("trace-recent", 0, "completed traces retained by the flight recorder ring (0 = default)")
		slowLog     = flag.Duration("slow-log", 0, "log requests slower than this with their trace IDs (0 disables)")
		debugAddr   = flag.String("debug-addr", "", "separate listen address for net/http/pprof (empty disables)")

		multi      = flag.Bool("multi", false, "serve a multi-tenant fleet under /t/{tenant}/...")
		tenantsDir = flag.String("tenants-dir", "", "durable root for per-tenant data dirs (with -multi; empty serves tenants from memory)")
		maxOpen    = flag.Int("max-open", tenant.DefaultMaxOpen, "max concurrently open tenant repositories (LRU-evicted beyond; negative disables eviction)")
		quotaObj   = flag.Int("quota-max-objects", 0, "per-tenant cap on content-addressed objects (0 = unlimited)")
		quotaBytes = flag.Int64("quota-max-bytes", 0, "per-tenant cap on logical bytes (0 = unlimited)")
		quotaRate  = flag.Float64("quota-commit-rate", 0, "per-tenant commit token-bucket refill rate per second (0 = unlimited)")
		quotaBurst = flag.Int("quota-commit-burst", 0, "per-tenant commit token-bucket capacity (0 = max(1, rate))")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get().String())
		return nil
	}
	problem, err := core.ParseProblem(*problemStr)
	if err != nil {
		return err
	}
	// The tracer is constructed even at sample rate 0 so a client can
	// always force a trace with an X-DSV-Trace header and read it back
	// from /tracez.
	tracer := trace.New(trace.Options{Sample: *traceSample, Recent: *traceRecent})
	ropt := versioning.RepositoryOptions{
		Problem:            problem,
		Constraint:         *constraint,
		AutoFactor:         *autoFactor,
		ReplanEvery:        *replanEvery,
		CacheEntries:       *cache,
		CacheBytes:         *cacheBytes,
		Workers:            *workers,
		Shards:             *shards,
		SyncWrites:         *fsync,
		GroupCommit:        *groupCommit,
		GroupCommitLinger:  *linger,
		MaintenanceWorkers: *maintenance,
		PlanHistory:        *planHistory,
		HeatHalfLife:       *heatHL,
		EngineOptions: versioning.EngineOptions{
			SolverTimeout: *timeout,
			DisableILP:    !*ilp,
		},
	}

	var handler *serve.Server
	var mgr *tenant.Manager
	var repo *versioning.Repository
	sopt := serve.Options{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		RetryAfter:     *retryAfter,
		Tracer:         tracer,
		SlowRequest:    *slowLog,
		RespCacheBytes: *respCache,
	}
	if *multi {
		// Refuse single-repo flags that would otherwise be dropped
		// silently: an operator pointing a fleet at -data-dir would get
		// in-memory tenants and lose everything on restart.
		if *dataDir != "" {
			return errors.New("-data-dir is single-repo only; use -tenants-dir with -multi")
		}
		if *demo > 0 {
			return errors.New("-demo is single-repo only")
		}
		// Without a durable root, evicting a tenant would discard its
		// whole committed history (there is no journal to reopen from), so
		// an in-memory fleet never evicts.
		mo := *maxOpen
		if *tenantsDir == "" && mo >= 0 {
			log.Printf("dsvd: in-memory fleet, eviction disabled (set -tenants-dir to bound open tenants with -max-open)")
			mo = -1
		}
		mgr = tenant.NewManager(tenant.Options{
			RootDir: *tenantsDir,
			MaxOpen: mo,
			Repo:    ropt,
			Tracer:  tracer,
			Quota: tenant.Quota{
				MaxObjects:      *quotaObj,
				MaxLogicalBytes: *quotaBytes,
				CommitsPerSec:   *quotaRate,
				CommitBurst:     *quotaBurst,
			},
		})
		handler = serve.NewMulti(mgr, sopt)
		if *tenantsDir != "" {
			log.Printf("dsvd: multi-tenant fleet rooted at %s (max %d open)", *tenantsDir, *maxOpen)
		} else {
			log.Printf("dsvd: multi-tenant fleet in memory (max %d open)", *maxOpen)
		}
	} else {
		ropt.DataDir = *dataDir
		repo, err = versioning.Open("dsvd", ropt)
		if err != nil {
			return err
		}
		if *dataDir != "" {
			log.Printf("dsvd: durable storage in %s (%d versions recovered)", *dataDir, repo.Versions())
		}
		if *demo > 0 && repo.Versions() == 0 {
			src := versioning.GenerateRepo("dsvd-demo", *demo, *demoSeed)
			ctx := context.Background()
			for v := 0; v < src.Graph.N(); v++ {
				if _, err := repo.Commit(ctx, src.Parents[v], src.Contents[v]); err != nil {
					return fmt.Errorf("preloading demo commit %d: %w", v, err)
				}
			}
			log.Printf("dsvd: preloaded %d demo commits (seed %d)", *demo, *demoSeed)
		}
		handler = serve.New(repo, sopt)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGQUIT dumps the flight recorder — the same snapshot /tracez
	// serves — plus the plan observatory's vital signs, without
	// disturbing the process, for the case where the daemon is wedged
	// enough that HTTP is not answering.
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	go func() {
		for range quitCh {
			buf, err := json.Marshal(tracer.Recorder().Snapshot())
			if err != nil {
				log.Printf("dsvd: flight recorder dump failed: %v", err)
				continue
			}
			log.Printf("dsvd: flight recorder dump: %s", buf)
			if repo != nil {
				log.Printf("dsvd: plan observatory: %s", repo.PlanContext())
			}
			if mgr != nil {
				for name, st := range mgr.OpenStats() {
					log.Printf("dsvd: plan observatory [%s]: replans=%d winner=%q records=%d failures=%d",
						name, st.Replans, st.Winner, st.PlanRecords, st.ReplanFailures)
				}
			}
		}
	}()

	if *debugAddr != "" {
		// pprof gets its own listener so profiling traffic never competes
		// with serving traffic for admission slots (and is never exposed
		// on the public address).
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("dsvd: pprof on %s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				log.Printf("dsvd: pprof listener: %v", err)
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("dsvd: serving %s (constraint %d, re-plan every %d commits) on %s",
			problem, *constraint, *replanEvery, *addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	closeStorage := func(deadline context.Context) error {
		handler.Close()
		if mgr != nil {
			// Close every open tenant repository (journal + backend flush per
			// tenant), bounded by the drain deadline: a hung flush must not
			// wedge shutdown forever, but an abandoned one is reported.
			done := make(chan error, 1)
			go func() { done <- mgr.Close() }()
			select {
			case err := <-done:
				return err
			case <-deadline.Done():
				return fmt.Errorf("tenant close exceeded drain deadline: %w", deadline.Err())
			}
		}
		return repo.Close()
	}
	select {
	case err := <-errCh:
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if cerr := closeStorage(shutdownCtx); cerr != nil {
			log.Printf("dsvd: closing storage: %v", cerr)
		}
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// flush every journal and backend so a restart recovers everything.
	// The whole sequence shares one -drain deadline.
	log.Printf("dsvd: shutting down (draining up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("dsvd: drain incomplete: %v", err)
	}
	if err := closeStorage(shutdownCtx); err != nil {
		return fmt.Errorf("flushing storage: %w", err)
	}
	log.Printf("dsvd: storage flushed, bye")
	return nil
}
