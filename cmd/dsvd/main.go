// Command dsvd is the dataset-versioning serving daemon: a Repository
// behind HTTP (the handler stack lives in package serve). Clients
// commit versions and check them out; the daemon keeps the storage
// layout optimal by re-solving the configured regime through the
// portfolio engine every -replan-every commits and migrating its
// content-addressed store to the winning plan.
//
// Quick start:
//
//	dsvd -addr :8080 -problem MSR -replan-every 8 &
//	curl -s localhost:8080/commit -d '{"parent":-1,"lines":["v0 line"]}'
//	curl -s localhost:8080/commit -d '{"parent":0,"lines":["v0 line","v1 line"]}'
//	curl -s localhost:8080/checkout/1
//	curl -s localhost:8080/plan
//	curl -s localhost:8080/statsz
//
// Storage is pluggable: by default versions live in a sharded in-memory
// backend (-shards shards); with -data-dir the daemon runs on a durable
// disk backend plus a write-ahead commit journal, and a restart replays
// the journal so the full committed history survives a kill. SIGINT and
// SIGTERM trigger a graceful shutdown: in-flight requests drain, then
// the journal and backend are flushed.
//
// Serving is hardened for real traffic: admission control bounds
// concurrent requests (-max-inflight, -max-queue, -queue-wait) and
// sheds overload with 429 + Retry-After; concurrent checkouts of the
// same version are singleflighted; per-endpoint latency/throughput
// counters are served at /statsz. Drive it with cmd/dsvload.
//
// -demo N preloads a seeded synthetic history of N commits so /checkout
// and /plan have something to serve immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/serve"
	"repro/versioning"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dsvd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		problemStr  = flag.String("problem", "MSR", "re-planning regime: MSR|MMR|BSR|BMR (or MST|SPT baselines)")
		constraint  = flag.Int64("constraint", 0, "regime bound; 0 derives one from the minimum-storage plan")
		autoFactor  = flag.Float64("auto-factor", 2, "slack multiplier for automatic storage budgets")
		replanEvery = flag.Int("replan-every", 8, "re-plan and migrate every k commits (negative: only via POST /replan)")
		cache       = flag.Int("cache", 256, "checkout LRU entries (negative disables)")
		workers     = flag.Int("workers", 0, "batch checkout workers (0 = GOMAXPROCS)")
		shards      = flag.Int("shards", 0, "in-memory backend shards (0 = default; ignored with -data-dir)")
		dataDir     = flag.String("data-dir", "", "durable storage root (objects + commit journal); empty serves from memory")
		fsync       = flag.Bool("fsync", false, "fsync the commit journal on every commit (with -data-dir)")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-solver deadline inside re-planning races")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
		maxInFlight = flag.Int("max-inflight", 0, "admission control: max concurrently executing requests (0 = 4*GOMAXPROCS, negative disables)")
		maxQueue    = flag.Int("max-queue", 0, "admission control: waiting slots before load shedding (0 = 2*max-inflight)")
		queueWait   = flag.Duration("queue-wait", 100*time.Millisecond, "admission control: max time a request queues for a slot")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint sent with 429 responses")
		ilp         = flag.Bool("ilp", false, "include the exact ILP in MSR re-planning races")
		demo        = flag.Int("demo", 0, "preload a synthetic history of N commits")
		demoSeed    = flag.Int64("demo-seed", 42, "seed for -demo")
	)
	flag.Parse()
	problem, err := core.ParseProblem(*problemStr)
	if err != nil {
		return err
	}
	repo, err := versioning.Open("dsvd", versioning.RepositoryOptions{
		Problem:      problem,
		Constraint:   *constraint,
		AutoFactor:   *autoFactor,
		ReplanEvery:  *replanEvery,
		CacheEntries: *cache,
		Workers:      *workers,
		Shards:       *shards,
		DataDir:      *dataDir,
		SyncWrites:   *fsync,
		EngineOptions: versioning.EngineOptions{
			SolverTimeout: *timeout,
			DisableILP:    !*ilp,
		},
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		log.Printf("dsvd: durable storage in %s (%d versions recovered)", *dataDir, repo.Versions())
	}
	if *demo > 0 && repo.Versions() == 0 {
		src := versioning.GenerateRepo("dsvd-demo", *demo, *demoSeed)
		ctx := context.Background()
		for v := 0; v < src.Graph.N(); v++ {
			if _, err := repo.Commit(ctx, src.Parents[v], src.Contents[v]); err != nil {
				return fmt.Errorf("preloading demo commit %d: %w", v, err)
			}
		}
		log.Printf("dsvd: preloaded %d demo commits (seed %d)", *demo, *demoSeed)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	handler := serve.New(repo, serve.Options{
		MaxInFlight: *maxInFlight,
		MaxQueue:    *maxQueue,
		QueueWait:   *queueWait,
		RetryAfter:  *retryAfter,
	})
	srv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("dsvd: serving %s (constraint %d, re-plan every %d commits) on %s",
			problem, *constraint, *replanEvery, *addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	select {
	case err := <-errCh:
		repo.Close()
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// flush the journal and the backend so a restart recovers everything.
	log.Printf("dsvd: shutting down (draining up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("dsvd: drain incomplete: %v", err)
	}
	if err := repo.Close(); err != nil {
		return fmt.Errorf("flushing storage: %w", err)
	}
	log.Printf("dsvd: storage flushed, bye")
	return nil
}
