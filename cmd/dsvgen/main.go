// Command dsvgen generates version graphs: the Table 4 datasets, the
// LeetCode Erdős–Rényi variants, content-backed synthetic repositories,
// and the random-compression transform of Section 7.1. Output is the
// JSON graph format consumed by dsvsolve.
//
// Usage:
//
//	dsvgen -dataset styleguide -o styleguide.json
//	dsvgen -er 0.2 -o leetcode-er.json
//	dsvgen -repo 200 -seed 7 -compress -o repo.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/graph"
	"repro/internal/repogen"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "Table 4 dataset name (datasharing|styleguide|996.ICU|LeetCodeAnimation|freeCodeCamp)")
		er       = flag.Float64("er", -1, "LeetCode ER edge probability (0..1]")
		repo     = flag.Int("repo", 0, "generate a content-backed repository with N commits")
		compress = flag.Bool("compress", false, "apply the random-compression transform")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *dataset != "":
		g, err = repogen.Dataset(*dataset)
	case *er > 0:
		g = repogen.LeetCodeER(*er, *seed)
	case *repo > 0:
		g = repogen.GenerateRepo("synthetic-repo", *repo, *seed).Graph
	default:
		fmt.Fprintln(os.Stderr, "dsvgen: one of -dataset, -er, -repo is required")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsvgen: %v\n", err)
		os.Exit(1)
	}
	if *compress {
		g = graph.Compress(g, rand.New(rand.NewSource(*seed)))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsvgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := g.Write(w); err != nil {
		fmt.Fprintf(os.Stderr, "dsvgen: %v\n", err)
		os.Exit(1)
	}
	st := g.Stats()
	fmt.Fprintf(os.Stderr, "%s: %d versions, %d deltas, avg s_v=%d, avg s_e=%d\n",
		st.Name, st.Nodes, st.Edges, st.AvgNodeCost, st.AvgEdgeCost)
}
